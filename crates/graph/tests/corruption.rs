//! Corrupt-input robustness: seeded truncation and bit-flip fuzzing of
//! the serialized formats. Every corruption must surface as a typed
//! `Err`, never a panic and (thanks to the v2 CRC) never a silently
//! different graph.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_graph::io::{read_binary, read_edge_list_text, write_binary, write_edge_list_text};
use lotus_graph::EdgeList;

fn sample_edges(rng: &mut SmallRng, n: u32, m: usize) -> EdgeList {
    let pairs: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    EdgeList::from_pairs(pairs).canonicalized()
}

#[test]
fn truncated_binary_always_errors() {
    let mut rng = SmallRng::seed_from_u64(0xb10c);
    for _ in 0..40 {
        let el = sample_edges(&mut rng, 64, 100);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        // Any strict prefix is either missing payload or missing the CRC
        // trailer; both must be typed errors.
        let cut = rng.gen_range(0..buf.len() as u64) as usize;
        let truncated = &buf[..cut];
        assert!(
            read_binary(truncated).is_err(),
            "prefix of {cut}/{} bytes was accepted",
            buf.len()
        );
    }
}

#[test]
fn bit_flipped_binary_always_errors() {
    let mut rng = SmallRng::seed_from_u64(0xf11b);
    for _ in 0..60 {
        let el = sample_edges(&mut rng, 64, 80);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        let byte = rng.gen_range(0..buf.len() as u64) as usize;
        let bit = rng.gen_range(0..8u32);
        buf[byte] ^= 1 << bit;
        // A single flipped bit lands in the header (structural error), in
        // the payload, or in the trailer; the CRC catches the latter two.
        assert!(
            read_binary(&buf[..]).is_err(),
            "flip at byte {byte} bit {bit} was accepted"
        );
    }
}

#[test]
fn multi_corruption_never_panics() {
    // Heavier corruption (several flips + truncation) may in principle
    // collide the CRC, but the reader must never panic; wrap in
    // catch_unwind to turn any panic into a test failure with context.
    let mut rng = SmallRng::seed_from_u64(0xdead);
    for round in 0..80 {
        let el = sample_edges(&mut rng, 32, 40);
        let mut buf = Vec::new();
        write_binary(&el, &mut buf).unwrap();
        for _ in 0..4 {
            let byte = rng.gen_range(0..buf.len() as u64) as usize;
            buf[byte] ^= rng.gen::<u32>() as u8 | 1;
        }
        let cut = rng.gen_range(0..buf.len() as u64 + 1) as usize;
        buf.truncate(cut);
        let result = std::panic::catch_unwind(|| read_binary(&buf[..]).map(|el| el.len()));
        assert!(result.is_ok(), "reader panicked on round {round}");
    }
}

#[test]
fn corrupted_text_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x7e27);
    for round in 0..60 {
        let el = sample_edges(&mut rng, 32, 30);
        let mut buf = Vec::new();
        write_edge_list_text(&el, &mut buf).unwrap();
        for _ in 0..6 {
            if buf.is_empty() {
                break;
            }
            let byte = rng.gen_range(0..buf.len() as u64) as usize;
            buf[byte] = rng.gen::<u32>() as u8;
        }
        let cut = rng.gen_range(0..buf.len() as u64 + 1) as usize;
        buf.truncate(cut);
        let result = std::panic::catch_unwind(|| read_edge_list_text(&buf[..]).map(|el| el.len()));
        assert!(result.is_ok(), "text reader panicked on round {round}");
    }
}
