//! Property tests for the graph substrate.

use proptest::collection::vec;
use proptest::prelude::*;

use lotus_graph::degeneracy::core_decomposition;
use lotus_graph::varint::VarintCsr;
use lotus_graph::{io, EdgeList, UndirectedCsr};

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// CSR is symmetric: u ∈ N(v) ⇔ v ∈ N(u), lists sorted and distinct.
    #[test]
    fn csr_is_symmetric_and_sorted(pairs in vec((0u32..50, 0u32..50), 0..200)) {
        let g = graph_of(pairs, 50);
        for v in 0..g.num_vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
            for &u in ns {
                prop_assert!(g.neighbors(u).contains(&v), "symmetry {v}-{u}");
                prop_assert_ne!(u, v, "no self loops");
            }
        }
        // Entry count is twice the edge count.
        prop_assert_eq!(g.csr().num_entries(), 2 * g.num_edges());
    }

    /// Binary I/O round-trips arbitrary canonical edge lists.
    #[test]
    fn binary_io_round_trip(pairs in vec((0u32..1000, 0u32..1000), 0..300)) {
        let mut el = EdgeList::from_pairs_with_vertices(pairs, 1000);
        el.canonicalize();
        let mut buf = Vec::new();
        io::write_binary(&el, &mut buf).unwrap();
        let back = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, el);
    }

    /// Varint CSR decodes back to the original lists and never grows a
    /// list.
    #[test]
    fn varint_round_trip(pairs in vec((0u32..200, 0u32..200), 0..400)) {
        let g = graph_of(pairs, 200);
        let fwd = g.forward_graph();
        let vc = VarintCsr::from_csr(&fwd);
        let mut buf = Vec::new();
        for v in 0..fwd.num_vertices() {
            vc.decode_into(v, &mut buf);
            prop_assert_eq!(buf.as_slice(), fwd.neighbors(v));
        }
        prop_assert_eq!(vc.num_entries(), fwd.num_entries());
    }

    /// Core numbers: every vertex's core number is at most its degree,
    /// at least 1 when it has an edge, and the k-core property holds —
    /// inside the sub-graph of vertices with core ≥ k, every vertex has
    /// at least k neighbours for k = degeneracy.
    #[test]
    fn core_numbers_properties(pairs in vec((0u32..40, 0u32..40), 0..150)) {
        let g = graph_of(pairs, 40);
        let c = core_decomposition(&g);
        for v in 0..g.num_vertices() {
            let k = c.core_numbers[v as usize];
            prop_assert!(k <= g.degree(v));
            if g.degree(v) > 0 {
                prop_assert!(k >= 1);
            }
        }
        let k = c.degeneracy;
        if k > 0 {
            // The top core is non-empty and internally ≥ k-regular.
            let members: Vec<u32> = (0..g.num_vertices())
                .filter(|&v| c.core_numbers[v as usize] >= k)
                .collect();
            prop_assert!(!members.is_empty());
            for &v in &members {
                let inside = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| c.core_numbers[u as usize] >= k)
                    .count();
                prop_assert!(inside as u32 >= k, "vertex {v} has {inside} < {k}");
            }
        }
    }

    /// Edge-balanced partitions cover all entries exactly once.
    #[test]
    fn edge_balanced_covers(pairs in vec((0u32..60, 0u32..60), 0..200), parts in 1usize..20) {
        let g = graph_of(pairs, 60);
        let fwd = g.forward_graph();
        let ranges = lotus_graph::partition::edge_balanced(&fwd, parts);
        prop_assert_eq!(ranges.len(), parts);
        let covered: u64 = ranges
            .iter()
            .map(|r| lotus_graph::partition::range_edges(&fwd, *r))
            .sum();
        prop_assert_eq!(covered, fwd.num_entries());
    }

    /// The parallel CSR construction matches a naive sequential build.
    #[test]
    fn parallel_build_matches_naive(pairs in vec((0u32..70, 0u32..70), 0..400)) {
        let mut el = EdgeList::from_pairs_with_vertices(pairs, 70);
        el.canonicalize();
        let g = UndirectedCsr::from_canonical_edges(&el);

        let mut naive: Vec<Vec<u32>> = vec![Vec::new(); 70];
        for &(u, v) in el.pairs() {
            naive[u as usize].push(v);
            naive[v as usize].push(u);
        }
        for l in &mut naive {
            l.sort_unstable();
        }
        for v in 0..70u32 {
            prop_assert_eq!(g.neighbors(v), naive[v as usize].as_slice(), "vertex {}", v);
        }
    }

    /// `lower_neighbors` and `upper_neighbors` partition each list.
    #[test]
    fn lower_upper_partition(pairs in vec((0u32..50, 0u32..50), 0..200)) {
        let g = graph_of(pairs, 50);
        for v in 0..g.num_vertices() {
            let lower = g.lower_neighbors(v);
            let upper = g.upper_neighbors(v);
            prop_assert!(lower.iter().all(|&u| u < v));
            prop_assert!(upper.iter().all(|&u| u > v));
            prop_assert_eq!(lower.len() + upper.len(), g.neighbors(v).len());
        }
    }
}
