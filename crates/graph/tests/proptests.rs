//! Randomized property tests for the graph substrate (deterministic
//! seeded cases; failures name the seed that reproduces them).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus_graph::degeneracy::core_decomposition;
use lotus_graph::varint::VarintCsr;
use lotus_graph::{io, EdgeList, UndirectedCsr};

const CASES: u64 = 64;

fn raw_edges(rng: &mut SmallRng, max_v: u32, max_e: usize) -> Vec<(u32, u32)> {
    let count = rng.gen_range(0..max_e);
    (0..count)
        .map(|_| (rng.gen_range(0..max_v), rng.gen_range(0..max_v)))
        .collect()
}

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

/// CSR is symmetric: u ∈ N(v) ⇔ v ∈ N(u), lists sorted and distinct.
#[test]
fn csr_is_symmetric_and_sorted() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 50, 200), 50);
        for v in 0..g.num_vertices() {
            let ns = g.neighbors(v);
            assert!(
                ns.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: sorted distinct"
            );
            for &u in ns {
                assert!(g.neighbors(u).contains(&v), "seed {seed}: symmetry {v}-{u}");
                assert_ne!(u, v, "seed {seed}: no self loops");
            }
        }
        // Entry count is twice the edge count.
        assert_eq!(g.csr().num_entries(), 2 * g.num_edges(), "seed {seed}");
    }
}

/// Binary I/O round-trips arbitrary canonical edge lists.
#[test]
fn binary_io_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut el = EdgeList::from_pairs_with_vertices(raw_edges(&mut rng, 1000, 300), 1000);
        el.canonicalize();
        let mut buf = Vec::new();
        io::write_binary(&el, &mut buf).unwrap();
        let back = io::read_binary(&buf[..]).unwrap();
        assert_eq!(back, el, "seed {seed}");
    }
}

/// Varint CSR decodes back to the original lists and never grows a list.
#[test]
fn varint_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 200, 400), 200);
        let fwd = g.forward_graph();
        let vc = VarintCsr::from_csr(&fwd);
        let mut buf = Vec::new();
        for v in 0..fwd.num_vertices() {
            vc.decode_into(v, &mut buf);
            assert_eq!(buf.as_slice(), fwd.neighbors(v), "seed {seed} vertex {v}");
        }
        assert_eq!(vc.num_entries(), fwd.num_entries(), "seed {seed}");
    }
}

/// Core numbers: every vertex's core number is at most its degree, at
/// least 1 when it has an edge, and the k-core property holds — inside
/// the sub-graph of vertices with core ≥ k, every vertex has at least k
/// neighbours for k = degeneracy.
#[test]
fn core_numbers_properties() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 40, 150), 40);
        let c = core_decomposition(&g);
        for v in 0..g.num_vertices() {
            let k = c.core_numbers[v as usize];
            assert!(k <= g.degree(v), "seed {seed}");
            if g.degree(v) > 0 {
                assert!(k >= 1, "seed {seed}");
            }
        }
        let k = c.degeneracy;
        if k > 0 {
            // The top core is non-empty and internally ≥ k-regular.
            let members: Vec<u32> = (0..g.num_vertices())
                .filter(|&v| c.core_numbers[v as usize] >= k)
                .collect();
            assert!(!members.is_empty(), "seed {seed}");
            for &v in &members {
                let inside = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| c.core_numbers[u as usize] >= k)
                    .count();
                assert!(
                    inside as u32 >= k,
                    "seed {seed}: vertex {v} has {inside} < {k}"
                );
            }
        }
    }
}

/// Edge-balanced partitions cover all entries exactly once.
#[test]
fn edge_balanced_covers() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 60, 200), 60);
        let parts = rng.gen_range(1..20usize);
        let fwd = g.forward_graph();
        let ranges = lotus_graph::partition::edge_balanced(&fwd, parts);
        assert_eq!(ranges.len(), parts, "seed {seed}");
        let covered: u64 = ranges
            .iter()
            .map(|r| lotus_graph::partition::range_edges(&fwd, *r))
            .sum();
        assert_eq!(covered, fwd.num_entries(), "seed {seed}");
    }
}

/// The parallel CSR construction matches a naive sequential build.
#[test]
fn parallel_build_matches_naive() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut el = EdgeList::from_pairs_with_vertices(raw_edges(&mut rng, 70, 400), 70);
        el.canonicalize();
        let g = UndirectedCsr::from_canonical_edges(&el);

        let mut naive: Vec<Vec<u32>> = vec![Vec::new(); 70];
        for &(u, v) in el.pairs() {
            naive[u as usize].push(v);
            naive[v as usize].push(u);
        }
        for l in &mut naive {
            l.sort_unstable();
        }
        for v in 0..70u32 {
            assert_eq!(
                g.neighbors(v),
                naive[v as usize].as_slice(),
                "seed {seed} vertex {v}"
            );
        }
    }
}

/// `lower_neighbors` and `upper_neighbors` partition each list.
#[test]
fn lower_upper_partition() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 50, 200), 50);
        for v in 0..g.num_vertices() {
            let lower = g.lower_neighbors(v);
            let upper = g.upper_neighbors(v);
            assert!(lower.iter().all(|&u| u < v), "seed {seed}");
            assert!(upper.iter().all(|&u| u > v), "seed {seed}");
            assert_eq!(
                lower.len() + upper.len(),
                g.neighbors(v).len(),
                "seed {seed}"
            );
        }
    }
}
