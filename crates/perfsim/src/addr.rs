//! Synthetic address space for instrumented runs.
//!
//! Each array of a real implementation (CSR offsets, neighbour entries,
//! the H2H words, …) is assigned a page-aligned region; instrumented
//! kernels translate element indices to virtual addresses through these
//! regions, so the cache and TLB simulators see the same layout a real
//! execution would (contiguous streams per array, random jumps between
//! list positions).

/// A contiguous region backing one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Base virtual address (page aligned).
    pub base: u64,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Number of elements.
    pub len: u64,
}

impl Region {
    /// Address of element `i`.
    #[inline(always)]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(
            i < self.len,
            "index {i} out of region of {} elements",
            self.len
        );
        self.base + i * self.elem_size
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.elem_size * self.len
    }
}

/// Page-aligned bump allocator for regions.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

const PAGE: u64 = 4096;
/// Base of the synthetic heap (any non-zero page-aligned value works).
const HEAP_BASE: u64 = 0x1000_0000;

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self { next: HEAP_BASE }
    }

    /// Allocates a region of `len` elements of `elem_size` bytes.
    pub fn alloc(&mut self, elem_size: u64, len: u64) -> Region {
        let base = self.next;
        let bytes = (elem_size * len.max(1)).div_ceil(PAGE) * PAGE;
        self.next += bytes;
        Region {
            base,
            elem_size,
            len: len.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc(8, 1000);
        let b = space.alloc(4, 1);
        let c = space.alloc(2, 10_000);
        assert_eq!(a.base % PAGE, 0);
        assert_eq!(b.base % PAGE, 0);
        assert!(a.base + a.bytes() <= b.base);
        assert!(b.base + 4 <= c.base);
    }

    #[test]
    fn element_addresses() {
        let mut space = AddressSpace::new();
        let r = space.alloc(4, 100);
        assert_eq!(r.addr(0), r.base);
        assert_eq!(r.addr(10), r.base + 40);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_bounds_panics_in_debug() {
        let mut space = AddressSpace::new();
        let r = space.alloc(4, 10);
        let _ = r.addr(10);
    }
}
