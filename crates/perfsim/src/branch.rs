//! Branch-predictor model: a table of 2-bit saturating counters.
//!
//! The paper reports a 2.4× reduction in branch mispredictions for LOTUS
//! (§5.3, Figure 5c): merge-join comparisons on random neighbour lists are
//! data-dependent and unpredictable, while LOTUS's phase-1 bit probes
//! reduce the number of such branches. A bimodal 2-bit predictor indexed
//! by branch site captures exactly that difference.

/// Bimodal predictor: `2^index_bits` two-bit counters.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: usize,
    branches: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly-not-taken.
    pub fn new(index_bits: u32) -> Self {
        let size = 1usize << index_bits;
        Self {
            counters: vec![1u8; size],
            mask: size - 1,
            branches: 0,
            mispredictions: 0,
        }
    }

    /// A 4096-entry predictor (typical bimodal sizing).
    pub fn default_size() -> Self {
        Self::new(12)
    }

    /// Records the outcome of the branch at `site`; returns `true` when
    /// the prediction was wrong.
    #[inline]
    pub fn record(&mut self, site: u64, taken: bool) -> bool {
        // Cheap multiplicative site hash spreads loop sites over the table.
        let idx = ((site.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 48) as usize & self.mask;
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        let mispredicted = predicted_taken != taken;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.branches += 1;
        if mispredicted {
            self.mispredictions += 1;
        }
        mispredicted
    }

    /// Branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredictions observed.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_branch_converges() {
        let mut bp = BranchPredictor::new(8);
        for _ in 0..100 {
            bp.record(1, true);
        }
        // After warm-up (≤ 2 transitions) every prediction is correct.
        assert!(bp.mispredictions() <= 2, "{}", bp.mispredictions());
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut bp = BranchPredictor::new(8);
        for i in 0..1000u64 {
            bp.record(1, i % 2 == 0);
        }
        assert!(bp.miss_ratio() > 0.4, "ratio {}", bp.miss_ratio());
    }

    #[test]
    fn sites_are_independent() {
        let mut bp = BranchPredictor::new(12);
        for _ in 0..100 {
            bp.record(1, true);
            bp.record(2, false);
        }
        assert!(bp.mispredictions() <= 4);
        assert_eq!(bp.branches(), 200);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(BranchPredictor::default_size().miss_ratio(), 0.0);
    }
}
