//! Set-associative LRU cache simulator.
//!
//! Models one cache level: `sets × ways` lines of `line_size` bytes with
//! true-LRU replacement. The hierarchy in [`crate::machine`] chains three
//! of these (L1 → L2 → L3) the way the paper's SkyLakeX machine is laid
//! out (Table 3).

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tags per way, `sets * ways` entries; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    sets: u64,
    ways: usize,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` capacity with `ways` associativity
    /// and `line_size`-byte lines. All three must be powers of two.
    pub fn new(size_bytes: u64, ways: usize, line_size: u64) -> Self {
        assert!(size_bytes.is_multiple_of(ways as u64 * line_size));
        assert!(line_size.is_power_of_two());
        let sets = size_bytes / (ways as u64 * line_size);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        Self {
            tags: vec![u64::MAX; (sets as usize) * ways],
            stamps: vec![0; (sets as usize) * ways],
            sets,
            ways,
            line_shift: line_size.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.sets * self.ways as u64 * (1u64 << self.line_shift)
    }

    /// Accesses `addr`; returns `true` on hit. Misses install the line.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let base = set * self.ways;
        self.clock += 1;

        let ways = &self.tags[base..base + self.ways];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Resets statistics but keeps cache contents (for warmup phases).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn capacity_eviction() {
        // 2 sets × 2 ways × 64B lines = 256 bytes.
        let mut c = Cache::new(256, 2, 64);
        // Three lines mapping to set 0: line numbers 0, 2, 4 (stride 128).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256)); // evicts line 0 (LRU)
        assert!(!c.access(0)); // line 0 was evicted
        assert!(c.access(256)); // still resident
    }

    #[test]
    fn lru_order_respected() {
        let mut c = Cache::new(256, 2, 64);
        c.access(0); // set0 way0
        c.access(128); // set0 way1
        c.access(0); // touch line 0 → 128 is now LRU
        c.access(256); // evicts 128
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn sequential_stream_mostly_hits_within_line() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        for i in 0..1024u64 {
            c.access(i * 4); // 4-byte stream
        }
        // 1024 accesses cover 64 lines → 64 misses.
        assert_eq!(c.misses(), 64);
        assert!((c.miss_ratio() - 64.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn power_of_two_stride_causes_conflict_misses() {
        // The classic pathological pattern: a stride equal to
        // sets × line_size maps everything to one set, so even a tiny
        // working set thrashes once it exceeds the associativity.
        let mut c = Cache::new(4 * 1024, 4, 64); // 16 sets
        let stride = 16 * 64;
        for _ in 0..10 {
            for i in 0..8u64 {
                c.access(i * stride); // 8 lines, all set 0, 4 ways
            }
        }
        assert_eq!(c.hits(), 0, "conflict thrashing should never hit");

        // The same 8 lines at line-stride fit comfortably.
        let mut c = Cache::new(4 * 1024, 4, 64);
        for _ in 0..10 {
            for i in 0..8u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 8, "only cold misses");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(1024, 4, 64);
        c.access(0x40);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert!(c.access(0x40), "contents preserved across reset");
    }

    #[test]
    fn size_accounting() {
        let c = Cache::new(22 * 1024 * 1024, 11, 64);
        assert_eq!(c.size_bytes(), 22 * 1024 * 1024);
    }
}
