//! Software performance counters (the PAPI stand-in).

/// Event totals accumulated by an instrumented run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Non-memory instructions (arithmetic, compares, index math).
    pub alu_ops: u64,
    /// Conditional branches.
    pub branches: u64,
}

impl PerfCounters {
    /// Memory accesses: loads + stores (paper Figure 5a).
    pub fn memory_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total retired-instruction estimate (paper Figure 5b): every load,
    /// store, ALU op, and branch counts as one instruction.
    pub fn instructions(&self) -> u64 {
        self.loads + self.stores + self.alu_ops + self.branches
    }

    /// Adds another counter set.
    pub fn add(&mut self, other: &PerfCounters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.alu_ops += other.alu_ops;
        self.branches += other.branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut a = PerfCounters {
            loads: 10,
            stores: 2,
            alu_ops: 5,
            branches: 3,
        };
        let b = PerfCounters {
            loads: 1,
            stores: 1,
            alu_ops: 1,
            branches: 1,
        };
        a.add(&b);
        assert_eq!(a.memory_accesses(), 14);
        assert_eq!(a.instructions(), 24);
    }

    #[test]
    fn default_is_zero() {
        let c = PerfCounters::default();
        assert_eq!(c.instructions(), 0);
        assert_eq!(c.memory_accesses(), 0);
    }
}
