//! Per-cacheline access histogram (paper Figure 9).
//!
//! §5.7 sorts H2H cachelines by access frequency and plots the cumulative
//! share of accesses served by the hottest lines, showing that 64 MB of
//! cache captures > 90% of H2H probes. [`CachelineHistogram`] records the
//! same measurement for any region accessed by an instrumented run.

/// Access counter per 64-byte cacheline of one region.
#[derive(Debug, Clone)]
pub struct CachelineHistogram {
    counts: Vec<u64>,
}

/// Cacheline size used throughout the paper's analysis.
pub const LINE_BYTES: u64 = 64;

impl CachelineHistogram {
    /// Creates a histogram for a region of `bytes` bytes.
    pub fn new(bytes: u64) -> Self {
        Self {
            counts: vec![0; bytes.div_ceil(LINE_BYTES) as usize],
        }
    }

    /// Records one access at byte offset `offset` within the region.
    #[inline(always)]
    pub fn record(&mut self, offset: u64) {
        self.counts[(offset / LINE_BYTES) as usize] += 1;
    }

    /// Number of cachelines tracked.
    pub fn lines(&self) -> usize {
        self.counts.len()
    }

    /// Total recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative access fractions after sorting lines hottest-first:
    /// `result[i]` = share of all accesses served by the `i+1` hottest
    /// lines. This is exactly the curve of Figure 9.
    pub fn cumulative_curve(&self) -> Vec<f64> {
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total = self.total_accesses();
        if total == 0 {
            return vec![0.0; sorted.len()];
        }
        let mut acc = 0u64;
        sorted
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total as f64
            })
            .collect()
    }

    /// Smallest number of (hottest) cachelines covering `fraction` of all
    /// accesses.
    pub fn lines_for_fraction(&self, fraction: f64) -> usize {
        let curve = self.cumulative_curve();
        curve
            .iter()
            .position(|&c| c >= fraction)
            .map_or(curve.len(), |p| p + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_accesses_concentrate() {
        let mut h = CachelineHistogram::new(64 * 100);
        // Line 5 gets 90 accesses, lines 0..9 one each.
        for _ in 0..90 {
            h.record(5 * 64 + 3);
        }
        for l in 0..10u64 {
            h.record(l * 64);
        }
        assert_eq!(h.total_accesses(), 100);
        let curve = h.cumulative_curve();
        assert!((curve[0] - 0.91).abs() < 1e-12, "hottest line holds 91%");
        assert_eq!(h.lines_for_fraction(0.9), 1);
        assert_eq!(h.lines_for_fraction(1.0), 10);
    }

    #[test]
    fn uniform_accesses_spread() {
        let mut h = CachelineHistogram::new(64 * 10);
        for l in 0..10u64 {
            h.record(l * 64);
        }
        assert_eq!(h.lines_for_fraction(0.5), 5);
    }

    #[test]
    fn empty_histogram() {
        let h = CachelineHistogram::new(640);
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(h.cumulative_curve(), vec![0.0; 10]);
        assert_eq!(h.lines_for_fraction(0.9), 10);
    }
}
