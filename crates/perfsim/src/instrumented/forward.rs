//! Instrumented Forward algorithm (the "Forward" bars of Figures 4 and 5).
//!
//! Replays Algorithm 1's access stream: the offsets array is walked
//! sequentially, each vertex's list is streamed, and every `N⁻(v) ∩ N⁻(u)`
//! merge join issues its element loads — the random component being the
//! jump to `N⁻(u)` somewhere in the (large) entry array, which is exactly
//! the locality problem §3.1 describes.

use lotus_graph::Csr;

use crate::addr::AddressSpace;
use crate::machine::MachineModel;

use super::merge_count_sim;

/// Runs the instrumented Forward count over an oriented forward graph,
/// feeding every access to `machine`. Returns the triangle count.
pub fn run_forward(forward: &Csr<u32>, machine: &mut MachineModel) -> u64 {
    let mut space = AddressSpace::new();
    let offsets_region = space.alloc(8, forward.num_vertices() as u64 + 1);
    let entries_region = space.alloc(4, forward.num_entries());

    let offsets = forward.offsets();
    let mut triangles = 0u64;
    for v in 0..forward.num_vertices() {
        // Load offsets[v] and offsets[v+1] (sequential stream).
        machine.read(offsets_region.addr(v as u64));
        machine.read(offsets_region.addr(v as u64 + 1));
        let nv = forward.neighbors(v);
        let v_start = offsets[v as usize];
        for (k, &u) in nv.iter().enumerate() {
            // Load the neighbour ID u (sequential within the list).
            machine.read(entries_region.addr(v_start + k as u64));
            // Random jump: offsets of u, then N⁻(u) itself.
            machine.read(offsets_region.addr(u as u64));
            machine.read(offsets_region.addr(u as u64 + 1));
            let nu = forward.neighbors(u);
            let u_start = offsets[u as usize];
            machine.alu(2); // slice setup
            triangles += merge_count_sim(
                machine,
                &entries_region,
                v_start,
                nv,
                &entries_region,
                u_start,
                nu,
                0x10,
            );
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_algos::forward::forward_count;
    use lotus_algos::preprocess::degree_order_and_orient;
    use lotus_graph::builder::graph_from_edges;

    #[test]
    fn instrumented_count_matches_production() {
        let g = lotus_gen::Rmat::new(9, 8).generate(3);
        let pre = degree_order_and_orient(&g);
        let mut m = MachineModel::tiny();
        let got = run_forward(&pre.forward, &mut m);
        assert_eq!(got, forward_count(&g));
        let r = m.report();
        assert!(r.memory_accesses > 0);
        assert!(r.branches > 0);
    }

    #[test]
    fn accesses_scale_with_graph_size() {
        let small = lotus_gen::Rmat::new(8, 6).generate(1);
        let large = lotus_gen::Rmat::new(10, 6).generate(1);
        let mut ms = MachineModel::tiny();
        let mut ml = MachineModel::tiny();
        run_forward(&degree_order_and_orient(&small).forward, &mut ms);
        run_forward(&degree_order_and_orient(&large).forward, &mut ml);
        assert!(ml.report().memory_accesses > ms.report().memory_accesses);
    }

    #[test]
    fn triangle_graph() {
        let g = graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let pre = degree_order_and_orient(&g);
        let mut m = MachineModel::tiny();
        assert_eq!(run_forward(&pre.forward, &mut m), 1);
    }
}
