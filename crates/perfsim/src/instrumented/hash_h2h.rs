//! Phase-1 alternative using a hash table instead of the H2H bit array
//! (the design §5.7 argues *against*).
//!
//! "While using a hash table can be seen as an option for implementing
//! H2H … a hashing mechanism imposes more instruction count per memory
//! access, a higher memory footprint, and a higher preprocessing time."
//! This kernel replays phase 1 with an open-addressing hash set of hub
//! pairs so those three costs can be measured against the bit array.

use lotus_core::h2h::pair_bit_index;
use lotus_core::LotusGraph;

use crate::addr::AddressSpace;
use crate::machine::MachineModel;

/// Outcome of the hash-based phase-1 replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashH2hOutcome {
    /// HHH + HHN triangles found (must match the bit-array phase 1).
    pub triangles: u64,
    /// Bytes of the hash table (its memory-footprint cost).
    pub table_bytes: u64,
    /// Slots probed while building the table (preprocessing cost).
    pub build_probes: u64,
}

/// Open-addressing (linear probing) set of 64-bit keys with a synthetic
/// address region, sized at 2× the element count like a typical
/// load-factor-0.5 table.
struct SimHashSet {
    slots: Vec<u64>, // key + 1, 0 = empty
    mask: usize,
    region: crate::addr::Region,
    build_probes: u64,
}

impl SimHashSet {
    fn new(capacity: usize, space: &mut AddressSpace) -> Self {
        let size = (capacity * 2).next_power_of_two().max(16);
        Self {
            slots: vec![0u64; size],
            mask: size - 1,
            region: space.alloc(8, size as u64),
            build_probes: 0,
        }
    }

    #[inline]
    fn slot_of(key: u64) -> u64 {
        // Fibonacci hashing; the same multiply a real table would issue.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn insert(&mut self, key: u64) {
        let mut i = (Self::slot_of(key) >> 32) as usize & self.mask;
        loop {
            self.build_probes += 1;
            if self.slots[i] == 0 {
                self.slots[i] = key + 1;
                return;
            }
            if self.slots[i] == key + 1 {
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Instrumented membership test: hash (2 ALU), then one load per
    /// probed slot plus a compare branch.
    #[inline]
    fn contains_sim(&self, key: u64, m: &mut MachineModel) -> bool {
        m.alu(2);
        let mut i = (Self::slot_of(key) >> 32) as usize & self.mask;
        loop {
            m.read(self.region.addr(i as u64));
            let slot = self.slots[i];
            let hit = slot == key + 1;
            let empty = slot == 0;
            m.branch(0x50, hit || empty);
            if hit {
                return true;
            }
            if empty {
                return false;
            }
            m.alu(1); // advance
            i = (i + 1) & self.mask;
        }
    }

    fn bytes(&self) -> u64 {
        self.slots.len() as u64 * 8
    }
}

/// Replays phase 1 with a hash table of hub pairs, feeding every access
/// to `machine`. The list-streaming accesses are identical to the bit
///-array replay; only the random membership structure differs.
pub fn run_phase1_hash(lg: &LotusGraph, machine: &mut MachineModel) -> HashH2hOutcome {
    let mut space = AddressSpace::new();
    let he_offsets_region = space.alloc(8, lg.num_vertices() as u64 + 1);
    let he_entries_region = space.alloc(2, lg.he.num_entries());

    // Preprocessing: materialize hub-hub pairs in the table.
    let mut table = SimHashSet::new(lg.h2h.bits_set() as usize, &mut space);
    for h1 in 0..lg.hub_count {
        for &h2 in lg.hub_neighbors(h1) {
            table.insert(pair_bit_index(h1, h2 as u32));
        }
    }

    let he_offsets = lg.he.offsets();
    let mut triangles = 0u64;
    for v in 0..lg.num_vertices() {
        machine.read(he_offsets_region.addr(v as u64));
        machine.read(he_offsets_region.addr(v as u64 + 1));
        let he = lg.hub_neighbors(v);
        let start = he_offsets[v as usize];
        for i in 0..he.len() {
            machine.read(he_entries_region.addr(start + i as u64));
            let h1 = he[i] as u32;
            for (j, &h2) in he[..i].iter().enumerate() {
                machine.read(he_entries_region.addr(start + j as u64));
                machine.alu(2); // pair-key computation
                if table.contains_sim(pair_bit_index(h1, h2 as u32), machine) {
                    triangles += 1;
                }
            }
        }
    }
    HashH2hOutcome {
        triangles,
        table_bytes: table.bytes(),
        build_probes: table.build_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::count::count_hub_phase;
    use lotus_core::preprocess::build_lotus_graph;
    use lotus_core::tiling::make_tiles;

    fn lotus(seed: u64) -> LotusGraph {
        let g = lotus_gen::Rmat::new(9, 10).generate(seed);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(64));
        build_lotus_graph(&g, &cfg)
    }

    #[test]
    fn hash_phase1_matches_bit_array() {
        let lg = lotus(3);
        let tiles = make_tiles(&lg.he, u32::MAX, 1);
        let (hhh, hhn) = count_hub_phase(&lg, &tiles);
        let mut m = MachineModel::tiny();
        let out = run_phase1_hash(&lg, &mut m);
        assert_eq!(out.triangles, hhh + hhn);
    }

    #[test]
    fn hash_costs_more_instructions_than_bit_array() {
        // §5.7's claim, measured: same probes, more instructions and a
        // larger random structure.
        let lg = lotus(7);
        let mut m_hash = MachineModel::tiny();
        let out = run_phase1_hash(&lg, &mut m_hash);

        let mut m_bits = MachineModel::tiny();
        let bits = crate::instrumented::lotus::run_lotus(&lg, &mut m_bits);
        // run_lotus includes phases 2-3, so compare only phase-1-dominated
        // quantities loosely: instructions *per H2H probe*.
        let probes = bits.h2h_histogram.total_accesses().max(1);
        let hash_instr_per_probe = m_hash.report().instructions as f64 / probes as f64;
        let bit_instr_per_probe = 6.0; // ~2 alu + 1 load + 1 branch + streaming
        assert!(
            hash_instr_per_probe > bit_instr_per_probe,
            "hash {hash_instr_per_probe:.1} vs bit-array ~{bit_instr_per_probe}"
        );
        // Footprint: hash table ≥ 64 bits per pair vs 1 bit in H2H for
        // this density.
        assert!(out.table_bytes > lg.h2h.size_bytes() / 4);
    }

    #[test]
    fn empty_hub_set() {
        let g = lotus_graph::builder::graph_from_edges([(0, 1), (1, 2), (0, 2)]);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(0));
        let lg = build_lotus_graph(&g, &cfg);
        let mut m = MachineModel::tiny();
        assert_eq!(run_phase1_hash(&lg, &mut m).triangles, 0);
    }
}
