//! Instrumented LOTUS counting (the "Lotus" bars of Figures 4 and 5, plus
//! the H2H access histogram behind Figure 9).
//!
//! Replays Algorithm 3's access stream over the real [`LotusGraph`]:
//! phase 1 streams 16-bit HE lists and randomly probes only the H2H bit
//! array; phase 2's random loads hit the compact HE entry array; phase 3's
//! hit the NHE entry array — three small working sets instead of one big
//! one, which is the mechanism behind the paper's §4.5 locality claim.

use lotus_core::h2h::TriBitArray;
use lotus_core::LotusGraph;

use crate::addr::AddressSpace;
use crate::hot_cachelines::CachelineHistogram;
use crate::machine::MachineModel;

use super::merge_count_sim;

/// Outcome of an instrumented LOTUS run.
#[derive(Debug)]
pub struct LotusSimOutcome {
    /// Total triangles (all four types).
    pub triangles: u64,
    /// Per-cacheline H2H access counts (Figure 9 input).
    pub h2h_histogram: CachelineHistogram,
}

/// Runs the instrumented three-phase LOTUS count, feeding every access to
/// `machine`.
pub fn run_lotus(lg: &LotusGraph, machine: &mut MachineModel) -> LotusSimOutcome {
    let mut space = AddressSpace::new();
    let n = lg.num_vertices() as u64;
    let he_offsets_region = space.alloc(8, n + 1);
    let he_entries_region = space.alloc(2, lg.he.num_entries());
    let nhe_offsets_region = space.alloc(8, n + 1);
    let nhe_entries_region = space.alloc(4, lg.nhe.num_entries());
    let h2h_region = space.alloc(8, (lg.h2h.size_bytes() / 8).max(1));

    let mut histogram = CachelineHistogram::new(lg.h2h.size_bytes().max(64));
    let mut triangles = 0u64;

    // Phase 1: HHH + HHN. Stream each HE list, probe H2H per pair.
    let he_offsets = lg.he.offsets();
    for v in 0..lg.num_vertices() {
        machine.read(he_offsets_region.addr(v as u64));
        machine.read(he_offsets_region.addr(v as u64 + 1));
        let he = lg.hub_neighbors(v);
        let start = he_offsets[v as usize];
        for i in 0..he.len() {
            machine.read(he_entries_region.addr(start + i as u64));
            let h1 = he[i] as u32;
            let base = TriBitArray::row_base(h1);
            machine.alu(2); // base computation, reused across the row
            for (j, &h2) in he[..i].iter().enumerate() {
                machine.read(he_entries_region.addr(start + j as u64));
                let bit = base + h2 as u64;
                machine.alu(2); // bit index + mask
                let byte = (bit >> 6) * 8;
                machine.read(h2h_region.addr(byte / 8));
                histogram.record(byte);
                let hit = lg.h2h.is_set_with_base(base, h2 as u32);
                machine.branch(0x20, hit);
                if hit {
                    triangles += 1;
                }
            }
        }
    }

    // Phase 2: HNN. Stream NHE lists, merge 16-bit HE lists.
    let nhe_offsets = lg.nhe.offsets();
    for v in 0..lg.num_vertices() {
        machine.read(nhe_offsets_region.addr(v as u64));
        machine.read(nhe_offsets_region.addr(v as u64 + 1));
        let he_v = lg.hub_neighbors(v);
        let nhe_v = lg.nonhub_neighbors(v);
        let v_he_start = he_offsets[v as usize];
        let v_nhe_start = nhe_offsets[v as usize];
        for (k, &u) in nhe_v.iter().enumerate() {
            machine.read(nhe_entries_region.addr(v_nhe_start + k as u64));
            if he_v.is_empty() {
                continue;
            }
            machine.read(he_offsets_region.addr(u as u64));
            machine.read(he_offsets_region.addr(u as u64 + 1));
            let he_u = lg.hub_neighbors(u);
            machine.alu(2);
            triangles += merge_count_sim(
                machine,
                &he_entries_region,
                v_he_start,
                he_v,
                &he_entries_region,
                he_offsets[u as usize],
                he_u,
                0x30,
            );
        }
    }

    // Phase 3: NNN. Merge 32-bit NHE lists, never touching hub edges.
    for v in 0..lg.num_vertices() {
        machine.read(nhe_offsets_region.addr(v as u64));
        machine.read(nhe_offsets_region.addr(v as u64 + 1));
        let nhe_v = lg.nonhub_neighbors(v);
        let v_start = nhe_offsets[v as usize];
        for (k, &u) in nhe_v.iter().enumerate() {
            machine.read(nhe_entries_region.addr(v_start + k as u64));
            machine.read(nhe_offsets_region.addr(u as u64));
            machine.read(nhe_offsets_region.addr(u as u64 + 1));
            let nhe_u = lg.nonhub_neighbors(u);
            machine.alu(2);
            triangles += merge_count_sim(
                machine,
                &nhe_entries_region,
                v_start,
                nhe_v,
                &nhe_entries_region,
                nhe_offsets[u as usize],
                nhe_u,
                0x40,
            );
        }
    }

    LotusSimOutcome {
        triangles,
        h2h_histogram: histogram,
    }
}

/// Records the raw phase-1 H2H access trace (byte offsets into the bit
/// array) for reuse-distance analysis ([`crate::reuse`]). No machine
/// model is driven; memory cost is 8 bytes per hub-pair probe, so prefer
/// Tiny-scale graphs.
pub fn record_h2h_trace(lg: &LotusGraph) -> crate::reuse::TraceRecorder {
    let mut recorder = crate::reuse::TraceRecorder::new();
    for v in 0..lg.num_vertices() {
        let he = lg.hub_neighbors(v);
        for i in 0..he.len() {
            let base = TriBitArray::row_base(he[i] as u32);
            for &h2 in &he[..i] {
                let bit = base + h2 as u64;
                recorder.record((bit >> 6) * 8);
            }
        }
    }
    recorder
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_algos::forward::forward_count;
    use lotus_core::config::{HubCount, LotusConfig};
    use lotus_core::preprocess::build_lotus_graph;

    fn build(seed: u64, hubs: u32) -> (lotus_graph::UndirectedCsr, LotusGraph) {
        let g = lotus_gen::Rmat::new(9, 8).generate(seed);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        (g, lg)
    }

    #[test]
    fn instrumented_count_matches_production() {
        let (g, lg) = build(5, 64);
        let mut m = MachineModel::tiny();
        let out = run_lotus(&lg, &mut m);
        assert_eq!(out.triangles, forward_count(&g));
        assert!(m.report().memory_accesses > 0);
    }

    #[test]
    fn h2h_histogram_records_phase1_probes() {
        let (_, lg) = build(7, 64);
        let mut m = MachineModel::tiny();
        let out = run_lotus(&lg, &mut m);
        // Every (h1, h2) pair probed exactly once.
        let expected: u64 = (0..lg.num_vertices())
            .map(|v| {
                let d = lg.hub_neighbors(v).len() as u64;
                d * d.saturating_sub(1) / 2
            })
            .sum();
        assert_eq!(out.h2h_histogram.total_accesses(), expected);
    }

    #[test]
    fn h2h_trace_reuse_matches_histogram_total() {
        let (_, lg) = build(11, 128);
        let trace = record_h2h_trace(&lg);
        let mut m = MachineModel::tiny();
        let out = run_lotus(&lg, &mut m);
        assert_eq!(trace.len() as u64, out.h2h_histogram.total_accesses());

        // §5.7's shape via reuse distance: a cache far smaller than H2H
        // captures ≥90% of probes.
        let profile = trace.profile();
        if let Some(lines) = profile.capacity_for_hit_fraction(0.9) {
            let total_lines = lg.h2h.size_bytes().div_ceil(64).max(1);
            assert!(
                (lines as u64) < total_lines,
                "{lines} lines needed of {total_lines} total"
            );
        }
    }

    #[test]
    fn lotus_has_fewer_llc_misses_than_forward_on_skewed_graph() {
        // The paper's headline locality claim (Figure 4a), on a graph big
        // enough to stress the tiny model hierarchy.
        let g = lotus_gen::Rmat::new(11, 12).generate(9);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(256));
        let lg = build_lotus_graph(&g, &cfg);

        let mut m_lotus = MachineModel::tiny();
        run_lotus(&lg, &mut m_lotus);

        let pre = lotus_algos::preprocess::degree_order_and_orient(&g);
        let mut m_fwd = MachineModel::tiny();
        super::super::forward::run_forward(&pre.forward, &mut m_fwd);

        let lotus_misses = m_lotus.report().llc_misses;
        let fwd_misses = m_fwd.report().llc_misses;
        assert!(
            lotus_misses < fwd_misses,
            "expected LOTUS ({lotus_misses}) < Forward ({fwd_misses}) LLC misses"
        );
    }
}
