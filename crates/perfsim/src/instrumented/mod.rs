//! Instrumented re-implementations of the counting kernels.
//!
//! Each kernel re-runs the *exact* algorithm logic while reporting every
//! element access (with its synthetic address), index computation, and
//! data-dependent branch to a [`crate::MachineModel`]. The returned
//! triangle counts are asserted against the production kernels by the test
//! suite, guaranteeing the replayed access stream belongs to the real
//! algorithm.

pub mod forward;
pub mod hash_h2h;
pub mod lotus;

pub use forward::run_forward;
pub use hash_h2h::{run_phase1_hash, HashH2hOutcome};
pub use lotus::{run_lotus, LotusSimOutcome};

use lotus_graph::NeighborId;

use crate::addr::Region;
use crate::machine::MachineModel;

/// Instrumented merge join over two list windows inside CSR entry regions.
///
/// Loads each element once (on index advance, as register-carried real
/// code does), accounts one compare ALU op and one data-dependent branch
/// per step, and returns the intersection size.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_count_sim<N: NeighborId>(
    m: &mut MachineModel,
    a_region: &Region,
    a_start: u64,
    a: &[N],
    b_region: &Region,
    b_start: u64,
    b: &[N],
    branch_site: u64,
) -> u64 {
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    if !a.is_empty() {
        m.read(a_region.addr(a_start));
    }
    if !b.is_empty() {
        m.read(b_region.addr(b_start));
    }
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        m.alu(1); // the comparison
        if x < y {
            m.branch(branch_site, true);
            i += 1;
            if i < a.len() {
                m.read(a_region.addr(a_start + i as u64));
            }
        } else if y < x {
            m.branch(branch_site, false);
            m.branch(branch_site + 1, true);
            j += 1;
            if j < b.len() {
                m.read(b_region.addr(b_start + j as u64));
            }
        } else {
            m.branch(branch_site, false);
            m.branch(branch_site + 1, false);
            count += 1;
            m.alu(1); // counter increment
            i += 1;
            j += 1;
            if i < a.len() {
                m.read(a_region.addr(a_start + i as u64));
            }
            if j < b.len() {
                m.read(b_region.addr(b_start + j as u64));
            }
        }
    }
    count
}
