#![warn(missing_docs)]

//! Software hardware-event substrate for the LOTUS reproduction.
//!
//! The paper measures last-level-cache misses, DTLB misses, instruction
//! counts and branch mispredictions with PAPI hardware counters (§5.1.3,
//! §5.3). Hardware counters are not available in this environment, so this
//! crate simulates the same events: a set-associative LRU cache hierarchy
//! ([`cache`]), a two-level data TLB ([`tlb`]), a 2-bit saturating-counter
//! branch predictor ([`branch`]), and software load/store/instruction
//! counters ([`counters`]) — all driven by *instrumented* re-implementations
//! of the Forward and LOTUS counting kernels ([`instrumented`]) that replay
//! their true memory-access streams against a synthetic address space
//! ([`addr`]).
//!
//! Absolute event counts differ from real silicon; the paper's claims are
//! about *ratios* between Forward and LOTUS on identical inputs, which the
//! simulation preserves (DESIGN.md §3, substitution 2).

pub mod addr;
pub mod branch;
pub mod cache;
pub mod counters;
pub mod hot_cachelines;
pub mod instrumented;
pub mod machine;
pub mod reuse;
pub mod tlb;

pub use branch::BranchPredictor;
pub use cache::Cache;
pub use counters::PerfCounters;
pub use hot_cachelines::CachelineHistogram;
pub use machine::{MachineModel, SimReport};
pub use reuse::{ReuseProfile, TraceRecorder};
pub use tlb::Tlb;
