//! The combined machine model: cache hierarchy + TLB + branch predictor +
//! software counters, with a SkyLakeX-shaped preset matching the paper's
//! primary evaluation machine (Table 3: 32 KB L1 / 1 MB L2 / 22 MB L3).

use crate::branch::BranchPredictor;
use crate::cache::Cache;
use crate::counters::PerfCounters;
use crate::tlb::Tlb;

/// Simulated machine: one core's memory hierarchy.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// First-level data cache.
    pub l1: Cache,
    /// Second-level cache.
    pub l2: Cache,
    /// Last-level cache.
    pub llc: Cache,
    /// Two-level data TLB.
    pub tlb: Tlb,
    /// Branch predictor.
    pub bp: BranchPredictor,
    /// Instruction/memory counters.
    pub counters: PerfCounters,
}

impl MachineModel {
    /// SkyLakeX-like single-core hierarchy (paper Table 3): 32 KB 8-way
    /// L1, 1 MB 16-way L2, 22 MB 11-way shared L3, 64-byte lines.
    pub fn skylakex() -> Self {
        Self {
            l1: Cache::new(32 * 1024, 8, 64),
            l2: Cache::new(1024 * 1024, 16, 64),
            llc: Cache::new(22 * 1024 * 1024, 11, 64),
            tlb: Tlb::skylakex(),
            bp: BranchPredictor::default_size(),
            counters: PerfCounters::default(),
        }
    }

    /// A deliberately small hierarchy for unit tests (4 KB / 32 KB /
    /// 256 KB) so cache effects appear on tiny graphs.
    pub fn tiny() -> Self {
        Self {
            l1: Cache::new(4 * 1024, 4, 64),
            l2: Cache::new(32 * 1024, 8, 64),
            llc: Cache::new(256 * 1024, 8, 64),
            tlb: Tlb::new(16, 4, 128, 8, 4096),
            bp: BranchPredictor::default_size(),
            counters: PerfCounters::default(),
        }
    }

    /// Simulates a load from `addr`.
    #[inline]
    pub fn read(&mut self, addr: u64) {
        self.counters.loads += 1;
        self.tlb.access(addr);
        if !self.l1.access(addr) && !self.l2.access(addr) {
            self.llc.access(addr);
        }
    }

    /// Simulates a store to `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64) {
        self.counters.stores += 1;
        self.tlb.access(addr);
        if !self.l1.access(addr) && !self.l2.access(addr) {
            self.llc.access(addr);
        }
    }

    /// Accounts `n` non-memory instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.alu_ops += n;
    }

    /// Records a conditional branch at `site` with the given outcome.
    #[inline]
    pub fn branch(&mut self, site: u64, taken: bool) {
        self.counters.branches += 1;
        self.bp.record(site, taken);
    }

    /// Snapshot of the headline events.
    pub fn report(&self) -> SimReport {
        SimReport {
            memory_accesses: self.counters.memory_accesses(),
            instructions: self.counters.instructions(),
            l1_misses: self.l1.misses(),
            l2_misses: self.l2.misses(),
            llc_misses: self.llc.misses(),
            dtlb_misses: self.tlb.dtlb_misses(),
            stlb_misses: self.tlb.stlb_misses(),
            branches: self.bp.branches(),
            branch_mispredictions: self.bp.mispredictions(),
        }
    }
}

/// Headline simulated events of one run (the quantities in Figures 4, 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Load + store count.
    pub memory_accesses: u64,
    /// Retired-instruction estimate.
    pub instructions: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Last-level-cache misses (Figure 4a).
    pub llc_misses: u64,
    /// First-level DTLB misses (Figure 4b).
    pub dtlb_misses: u64,
    /// Second-level TLB misses.
    pub stlb_misses: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Branch mispredictions (Figure 5c).
    pub branch_mispredictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_walks_hierarchy() {
        let mut m = MachineModel::tiny();
        m.read(0x1000);
        let r = m.report();
        assert_eq!(r.memory_accesses, 1);
        assert_eq!(r.l1_misses, 1);
        assert_eq!(r.l2_misses, 1);
        assert_eq!(r.llc_misses, 1);
        assert_eq!(r.dtlb_misses, 1);

        m.read(0x1000);
        let r = m.report();
        assert_eq!(r.l1_misses, 1, "second access hits L1");
        assert_eq!(r.llc_misses, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_misses() {
        let mut m = MachineModel::tiny();
        // Stream 16 KB (4× L1) twice: second pass misses L1, hits L2.
        for _ in 0..2 {
            for i in 0..256u64 {
                m.read(0x10_0000 + i * 64);
            }
        }
        let r = m.report();
        assert_eq!(r.llc_misses, 256, "only cold misses reach LLC");
        assert!(r.l1_misses > 256);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = MachineModel::tiny();
        m.write(0x2000);
        m.alu(5);
        m.branch(1, true);
        let r = m.report();
        assert_eq!(r.instructions, 1 + 5 + 1);
        assert_eq!(r.branches, 1);
    }

    #[test]
    fn skylakex_sizes_match_table3() {
        let m = MachineModel::skylakex();
        assert_eq!(m.l1.size_bytes(), 32 * 1024);
        assert_eq!(m.l2.size_bytes(), 1024 * 1024);
        assert_eq!(m.llc.size_bytes(), 22 * 1024 * 1024);
    }
}
