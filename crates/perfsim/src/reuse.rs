//! Reuse-distance (Mattson stack) analysis.
//!
//! For an access trace, the *stack distance* of each access is the number
//! of distinct cachelines touched since the previous access to the same
//! line. A fully-associative LRU cache of capacity `C` hits exactly the
//! accesses with stack distance `< C`, so one pass over the trace yields
//! the miss-ratio curve for *every* cache size — the analysis behind
//! §5.7's "64 MB of cache space suffices to satisfy 90% of accesses".
//!
//! Implemented with the classic balanced-structure trick (a Fenwick tree
//! over trace positions): O(N log N) time, O(N + L) space.

use lotus_algos::fx::FxHashMap;

/// Fenwick (binary indexed) tree over trace positions.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i)`.
    fn prefix(&self, mut i: usize) -> u32 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Histogram of stack distances plus cold (first-touch) misses.
#[derive(Debug, Clone, Default)]
pub struct ReuseProfile {
    /// `histogram[d]` = accesses with stack distance exactly `d`.
    pub histogram: Vec<u64>,
    /// First accesses to a line (infinite distance).
    pub cold_misses: u64,
    /// Total accesses analysed.
    pub total: u64,
}

impl ReuseProfile {
    /// Computes the profile of a cacheline trace (already divided by line
    /// size).
    pub fn from_line_trace(trace: &[u64]) -> Self {
        let n = trace.len();
        let mut last_pos: FxHashMap<u64, usize> = FxHashMap::default();
        let mut fenwick = Fenwick::new(n);
        let mut profile = ReuseProfile {
            total: n as u64,
            ..Self::default()
        };
        for (i, &line) in trace.iter().enumerate() {
            match last_pos.insert(line, i) {
                None => {
                    profile.cold_misses += 1;
                }
                Some(prev) => {
                    // Distinct lines touched in (prev, i): marked positions.
                    let d = (fenwick.prefix(i) - fenwick.prefix(prev + 1)) as usize;
                    if profile.histogram.len() <= d {
                        profile.histogram.resize(d + 1, 0);
                    }
                    profile.histogram[d] += 1;
                    // prev is no longer the most recent touch of `line`.
                    fenwick.add(prev, -1);
                }
            }
            fenwick.add(i, 1);
        }
        profile
    }

    /// Computes the profile of a byte-address trace with 64-byte lines.
    pub fn from_address_trace(addrs: &[u64]) -> Self {
        let lines: Vec<u64> = addrs.iter().map(|&a| a >> 6).collect();
        Self::from_line_trace(&lines)
    }

    /// Misses of a fully-associative LRU cache holding `capacity` lines:
    /// cold misses plus all accesses with stack distance `>= capacity`.
    pub fn misses_at(&self, capacity: usize) -> u64 {
        let hits: u64 = self.histogram.iter().take(capacity).sum();
        self.total - hits
    }

    /// Miss ratio at a given capacity.
    pub fn miss_ratio_at(&self, capacity: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses_at(capacity) as f64 / self.total as f64
        }
    }

    /// Smallest capacity (in lines) achieving at least `hit_fraction`
    /// hits, or `None` if even an infinite cache cannot (cold misses).
    pub fn capacity_for_hit_fraction(&self, hit_fraction: f64) -> Option<usize> {
        let needed = (self.total as f64 * hit_fraction).ceil() as u64;
        let mut hits = 0u64;
        for (d, &count) in self.histogram.iter().enumerate() {
            hits += count;
            if hits >= needed {
                return Some(d + 1);
            }
        }
        None
    }
}

/// Records a cacheline trace for one region during an instrumented run.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    lines: Vec<u64>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access at byte offset `offset` (64-byte lines).
    #[inline(always)]
    pub fn record(&mut self, offset: u64) {
        self.lines.push(offset >> 6);
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Analyses the recorded trace.
    pub fn profile(&self) -> ReuseProfile {
        ReuseProfile::from_line_trace(&self.lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;

    #[test]
    fn repeated_single_line() {
        let p = ReuseProfile::from_line_trace(&[7, 7, 7, 7]);
        assert_eq!(p.cold_misses, 1);
        assert_eq!(p.histogram[0], 3); // distance 0 each revisit
        assert_eq!(p.misses_at(1), 1);
    }

    #[test]
    fn cyclic_scan_distances() {
        // A, B, C, A, B, C: revisits have distance 2.
        let p = ReuseProfile::from_line_trace(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(p.cold_misses, 3);
        assert_eq!(p.histogram.get(2).copied().unwrap_or(0), 3);
        // Capacity 2 misses everything; capacity 3 hits all revisits.
        assert_eq!(p.misses_at(2), 6);
        assert_eq!(p.misses_at(3), 3);
        assert_eq!(p.capacity_for_hit_fraction(0.5), Some(3));
        assert_eq!(p.capacity_for_hit_fraction(0.9), None);
    }

    #[test]
    fn matches_fully_associative_lru_simulation() {
        // Cross-validation: stack-distance misses at capacity C must equal
        // a 1-set, C-way LRU cache on the same trace.
        let mut state = 0x12345u64;
        let trace: Vec<u64> = (0..4000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Skewed line distribution over 96 lines.
                let r = state % 128;
                if r < 96 {
                    r % 16
                } else {
                    r
                }
            })
            .collect();
        let profile = ReuseProfile::from_line_trace(&trace);
        for ways in [4usize, 16, 64] {
            let mut cache = Cache::new(64 * ways as u64, ways, 64);
            for &line in &trace {
                cache.access(line << 6);
            }
            assert_eq!(profile.misses_at(ways), cache.misses(), "capacity {ways}");
        }
    }

    #[test]
    fn recorder_round_trip() {
        let mut r = TraceRecorder::new();
        assert!(r.is_empty());
        for off in [0u64, 64, 0, 128, 64] {
            r.record(off);
        }
        assert_eq!(r.len(), 5);
        let p = r.profile();
        assert_eq!(p.cold_misses, 3);
        assert_eq!(p.total, 5);
    }

    #[test]
    fn empty_trace() {
        let p = ReuseProfile::from_line_trace(&[]);
        assert_eq!(p.total, 0);
        assert_eq!(p.miss_ratio_at(16), 0.0);
        assert_eq!(p.capacity_for_hit_fraction(0.9), None);
    }
}
