//! Data-TLB simulator.
//!
//! A TLB is a small set-associative cache of page translations; the model
//! reuses the cache structure at page granularity. The paper reports DTLB
//! miss reductions of 34.6× on average for LOTUS (§5.3) because each LOTUS
//! phase confines its random accesses to one compact structure — far fewer
//! pages than the full edge array.

use crate::cache::Cache;

/// Two-level data TLB (first-level DTLB backed by a larger STLB).
#[derive(Debug, Clone)]
pub struct Tlb {
    dtlb: Cache,
    stlb: Cache,
    page_shift: u32,
}

impl Tlb {
    /// Builds a TLB: `dtlb_entries`/`stlb_entries` translations with the
    /// given associativities over `page_size`-byte pages.
    pub fn new(
        dtlb_entries: u64,
        dtlb_ways: usize,
        stlb_entries: u64,
        stlb_ways: usize,
        page_size: u64,
    ) -> Self {
        assert!(page_size.is_power_of_two());
        // Model each translation as one "line" of 1 byte over the page
        // number space: capacity = entries, line = 1.
        Self {
            dtlb: Cache::new(dtlb_entries, dtlb_ways, 1),
            stlb: Cache::new(stlb_entries, stlb_ways, 1),
            page_shift: page_size.trailing_zeros(),
        }
    }

    /// SkyLakeX-like configuration: 64-entry 4-way DTLB, 1536-entry
    /// 12-way STLB, 4 KiB pages.
    pub fn skylakex() -> Self {
        Self::new(64, 4, 1536, 12, 4096)
    }

    /// Translates `addr`; fills both levels on miss.
    #[inline]
    pub fn access(&mut self, addr: u64) {
        let page = addr >> self.page_shift;
        if !self.dtlb.access(page) {
            self.stlb.access(page);
        }
    }

    /// First-level misses (the classic "DTLB miss" event).
    pub fn dtlb_misses(&self) -> u64 {
        self.dtlb.misses()
    }

    /// Misses that also missed the second level (page-walk count).
    pub fn stlb_misses(&self) -> u64 {
        self.stlb.misses()
    }

    /// Total translations requested.
    pub fn accesses(&self) -> u64 {
        self.dtlb.accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::skylakex();
        t.access(0x1000);
        t.access(0x1fff);
        assert_eq!(t.dtlb_misses(), 1);
        assert_eq!(t.accesses(), 2);
    }

    #[test]
    fn many_pages_overflow_dtlb_but_fit_stlb() {
        let mut t = Tlb::skylakex();
        // Touch 512 distinct pages twice; 512 > 64 DTLB entries but < 1536.
        for round in 0..2 {
            for p in 0..512u64 {
                t.access(p * 4096);
            }
            if round == 0 {
                assert_eq!(t.dtlb_misses(), 512);
            }
        }
        // Second round misses DTLB again (capacity) but hits STLB.
        assert_eq!(t.stlb_misses(), 512);
        assert!(t.dtlb_misses() > 512);
    }

    #[test]
    fn small_working_set_stays_resident() {
        let mut t = Tlb::skylakex();
        for _ in 0..100 {
            for p in 0..16u64 {
                t.access(p * 4096 + 123);
            }
        }
        assert_eq!(t.dtlb_misses(), 16);
    }
}
