//! Memory budgets.
//!
//! A [`MemoryBudget`] is just a byte ceiling; the intelligence lives in
//! the callers, which estimate a structure's footprint *before* building
//! it and degrade (shrink the hub set, pick a leaner algorithm) when the
//! estimate does not fit. See `lotus_core::resilient` for the LOTUS
//! degradation policy.

use std::fmt;

/// A byte ceiling for the data structures of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemoryBudget {
    bytes: u64,
}

impl MemoryBudget {
    /// A budget of exactly `bytes` bytes.
    pub fn from_bytes(bytes: u64) -> Self {
        Self { bytes }
    }

    /// The ceiling in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether an estimated footprint fits the budget.
    pub fn fits(&self, estimated_bytes: u64) -> bool {
        estimated_bytes <= self.bytes
    }

    /// Parses a human-friendly size: a plain byte count or a number with
    /// a binary suffix `k`/`m`/`g` (case-insensitive, optional trailing
    /// `b`/`ib`), e.g. `"65536"`, `"64k"`, `"512MiB"`, `"2G"`.
    ///
    /// # Errors
    /// Returns a message when the string is empty, non-numeric, has an
    /// unknown suffix, or overflows `u64`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let s = s.trim();
        let lower = s.to_ascii_lowercase();
        let (digits, multiplier) = if let Some(d) = strip_suffix_any(&lower, &["k", "kb", "kib"]) {
            (d, 1u64 << 10)
        } else if let Some(d) = strip_suffix_any(&lower, &["m", "mb", "mib"]) {
            (d, 1u64 << 20)
        } else if let Some(d) = strip_suffix_any(&lower, &["g", "gb", "gib"]) {
            (d, 1u64 << 30)
        } else if let Some(d) = strip_suffix_any(&lower, &["b"]) {
            (d, 1)
        } else {
            (lower.as_str(), 1)
        };
        let value: u64 = digits
            .trim()
            .parse()
            .map_err(|_| format!("invalid size '{s}' (expected e.g. 65536, 64k, 512m, 2g)"))?;
        value
            .checked_mul(multiplier)
            .map(Self::from_bytes)
            .ok_or_else(|| format!("size '{s}' overflows"))
    }
}

fn strip_suffix_any<'a>(s: &'a str, suffixes: &[&str]) -> Option<&'a str> {
    // Pick the longest matching suffix so "kib" is not mis-split as "ki"
    // + "b"; an empty or non-numeric remainder is rejected by the caller.
    let mut best: Option<&str> = None;
    for suffix in suffixes {
        if let Some(rest) = s.strip_suffix(suffix) {
            let rest = rest.trim();
            if !rest.is_empty() && best.is_none_or(|b: &str| rest.len() < b.len()) {
                best = Some(rest);
            }
        }
    }
    best
}

impl fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.bytes;
        if b >= 1 << 30 && b.is_multiple_of(1 << 30) {
            write!(f, "{}GiB", b >> 30)
        } else if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
            write!(f, "{}MiB", b >> 20)
        } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
            write!(f, "{}KiB", b >> 10)
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_suffixed_sizes() {
        assert_eq!(MemoryBudget::parse("65536").unwrap().bytes(), 65536);
        assert_eq!(MemoryBudget::parse("64k").unwrap().bytes(), 64 << 10);
        assert_eq!(MemoryBudget::parse("64K").unwrap().bytes(), 64 << 10);
        assert_eq!(MemoryBudget::parse("512MiB").unwrap().bytes(), 512 << 20);
        assert_eq!(MemoryBudget::parse("2g").unwrap().bytes(), 2 << 30);
        assert_eq!(MemoryBudget::parse(" 10 kb ").unwrap().bytes(), 10 << 10);
        assert_eq!(MemoryBudget::parse("128b").unwrap().bytes(), 128);
    }

    #[test]
    fn rejects_garbage_sizes() {
        for bad in ["", "k", "-5", "1.5g", "12x", "99999999999999999999g"] {
            assert!(MemoryBudget::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn fits_is_inclusive() {
        let b = MemoryBudget::from_bytes(100);
        assert!(b.fits(100));
        assert!(!b.fits(101));
    }

    #[test]
    fn display_picks_the_largest_exact_unit() {
        assert_eq!(MemoryBudget::from_bytes(2 << 30).to_string(), "2GiB");
        assert_eq!(MemoryBudget::from_bytes(3 << 20).to_string(), "3MiB");
        assert_eq!(MemoryBudget::from_bytes(64 << 10).to_string(), "64KiB");
        assert_eq!(MemoryBudget::from_bytes(1000).to_string(), "1000B");
    }
}
