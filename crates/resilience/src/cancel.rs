//! Cooperative cancellation and deadlines.
//!
//! Nothing here preempts a running kernel: the counting loops poll a
//! [`RunGuard`] at tile/chunk granularity (cheap — one or two atomic
//! loads plus, when a deadline is set, a monotonic clock read every few
//! hundred items) and wind down cleanly when it reports a [`StopReason`].

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation flag.
///
/// All clones share one flag: call [`CancelToken::cancel`] from any
/// thread (a signal handler, an admission controller, a client
/// disconnect) and every guarded loop holding a clone stops at its next
/// check point.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A wall-clock deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self {
            at: Instant::now()
                .checked_add(timeout)
                .unwrap_or_else(|| Instant::now() + Duration::from_secs(u32::MAX as u64)),
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// Whether the deadline has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Why a guarded run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A [`CancelToken`] was cancelled.
    Cancelled,
    /// The [`Deadline`] expired.
    DeadlineExpired,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

/// Combined cancellation state polled by guarded loops.
///
/// The default guard is unlimited (never stops a run) so callers without
/// resilience requirements pass `&RunGuard::default()` and pay only a
/// couple of branch checks per poll.
#[derive(Debug, Clone, Default)]
pub struct RunGuard {
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
}

impl RunGuard {
    /// A guard that never stops the run.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether any stop condition is attached at all. Loops may skip
    /// polling entirely for unlimited guards.
    pub fn is_limited(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Polls the stop conditions. Cancellation wins over deadline expiry
    /// when both hold.
    #[inline]
    pub fn should_stop(&self) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(StopReason::DeadlineExpired);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancels_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn deadline_expiry() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3500));
    }

    #[test]
    fn unlimited_guard_never_stops() {
        let g = RunGuard::unlimited();
        assert!(!g.is_limited());
        assert_eq!(g.should_stop(), None);
    }

    #[test]
    fn guard_reports_cancellation_before_deadline() {
        let token = CancelToken::new();
        let g = RunGuard::unlimited()
            .with_cancel(token.clone())
            .with_deadline(Deadline::after(Duration::ZERO));
        assert!(g.is_limited());
        assert_eq!(g.should_stop(), Some(StopReason::DeadlineExpired));
        token.cancel();
        assert_eq!(g.should_stop(), Some(StopReason::Cancelled));
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(StopReason::DeadlineExpired.to_string(), "deadline expired");
    }
}
