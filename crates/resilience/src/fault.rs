//! Seeded, deterministic fault injection (compiled only with the
//! `fault-injection` feature).
//!
//! The workspace declares *named fault points* with [`fault_point!`]
//! (e.g. `"io.read_binary.payload"`, `"core.phase.hnn"`); the canonical
//! list is [`POINTS`]. Tests [`arm`] a point with a [`FaultKind`] and a
//! hit number, run the operation under test, and assert that the
//! injected failure surfaces as a clean typed error — never a crash, and
//! never a silently wrong count.
//!
//! The registry is process-global, so tests that arm faults must be
//! serialized (take a shared mutex) and call [`reset`] around each case.
//!
//! [`fault_point!`]: crate::fault_point

use std::collections::HashMap;
use std::io;
use std::sync::Mutex;

/// Every fault point compiled into the workspace.
///
/// Kept in one place so coverage tests can demand an injection test per
/// point; adding a `fault_point!` call site means adding its name here.
pub const POINTS: &[&str] = &[
    "io.read_binary.header",
    "io.read_binary.payload",
    "io.read_text.line",
    "core.preprocess.build",
    "core.phase.hhh_hhn",
    "core.phase.hnn",
    "core.phase.nnn",
    "algos.forward.count",
    "serve.snapshot.write",
    "serve.snapshot.fsync",
    "serve.snapshot.rename",
    "serve.journal.append",
];

/// What an armed fault injects when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A generic I/O error (`ErrorKind::Other`).
    IoError,
    /// A short read (`ErrorKind::UnexpectedEof`), as if the stream were
    /// truncated mid-payload.
    ShortRead,
    /// A panic, exercising the `catch_unwind` isolation layer.
    Panic,
    /// A delay of the given milliseconds, then success. Used by the
    /// crash-recovery harness to hold a daemon *inside* a write long
    /// enough for an external `kill -9` to land mid-operation.
    Stall(u64),
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    kind: FaultKind,
    /// 1-based hit number at which the fault starts firing. Once
    /// triggered it keeps firing on every later hit, modelling a
    /// persistently failing resource.
    nth: u64,
}

#[derive(Default)]
struct Registry {
    armed: HashMap<String, Armed>,
    hits: HashMap<String, u64>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// Arms `point` to inject `kind` from its `nth` hit onward (1-based;
/// `nth == 1` fires immediately). Re-arming replaces the previous plan.
pub fn arm(point: &str, kind: FaultKind, nth: u64) {
    assert!(nth >= 1, "hit numbers are 1-based");
    with_registry(|r| {
        r.armed.insert(point.to_string(), Armed { kind, nth });
    });
}

/// Disarms every point and zeroes all hit counters.
pub fn reset() {
    with_registry(|r| {
        r.armed.clear();
        r.hits.clear();
    });
}

/// How many times `point` has been hit since the last [`reset`].
pub fn hits(point: &str) -> u64 {
    with_registry(|r| r.hits.get(point).copied().unwrap_or(0))
}

fn record_hit(point: &str) -> Option<FaultKind> {
    with_registry(|r| {
        let count = r.hits.entry(point.to_string()).or_insert(0);
        *count += 1;
        let count = *count;
        r.armed
            .get(point)
            .filter(|armed| count >= armed.nth)
            .map(|armed| armed.kind)
    })
}

/// Fires `point` at a fallible call site: returns the injected I/O error
/// if an error fault is due, panics if a [`FaultKind::Panic`] fault is
/// due, and returns `Ok(())` otherwise.
///
/// # Errors
/// Returns the injected I/O error when an error-kind fault is due at
/// `point`.
pub fn fire(point: &'static str) -> Result<(), io::Error> {
    match record_hit(point) {
        None => Ok(()),
        Some(FaultKind::IoError) => Err(io::Error::other(format!(
            "injected I/O error at fault point '{point}'"
        ))),
        Some(FaultKind::ShortRead) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("injected short read at fault point '{point}'"),
        )),
        Some(FaultKind::Panic) => trigger_panic(point),
        Some(FaultKind::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
    }
}

/// Fires `point` at an infallible call site: any armed error/panic fault
/// that is due panics (the surrounding phase is expected to run under
/// [`crate::isolate`]); an armed [`FaultKind::Stall`] sleeps and
/// continues.
pub fn fire_panic(point: &'static str) {
    match record_hit(point) {
        None => {}
        Some(FaultKind::Stall(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        Some(_) => trigger_panic(point),
    }
}

/// Arms fault points from the `LOTUS_FAULT_PLAN` environment variable,
/// so an externally launched process (the crash-recovery CI harness
/// kills a live daemon mid-snapshot) can be armed without code changes.
///
/// Grammar: `point=kind[:arg][@nth]` entries separated by `;`.
/// Kinds: `io`, `short`, `panic`, `stall:<ms>`. `@nth` defaults to 1.
/// Example: `serve.snapshot.write=stall:3000@1;serve.journal.append=io`.
///
/// Returns how many entries were armed; malformed entries are skipped
/// (an armed-from-env process must never fail to start because of a
/// typo in a test harness).
pub fn arm_from_env() -> usize {
    let Ok(plan) = std::env::var("LOTUS_FAULT_PLAN") else {
        return 0;
    };
    let mut armed = 0;
    for entry in plan.split(';').filter(|e| !e.trim().is_empty()) {
        let Some((point, rest)) = entry.trim().split_once('=') else {
            continue;
        };
        let (kind_str, nth) = match rest.split_once('@') {
            Some((k, n)) => match n.parse::<u64>() {
                Ok(n) if n >= 1 => (k, n),
                _ => continue,
            },
            None => (rest, 1),
        };
        let kind = match kind_str.split_once(':') {
            Some(("stall", ms)) => match ms.parse::<u64>() {
                Ok(ms) => FaultKind::Stall(ms),
                Err(_) => continue,
            },
            None => match kind_str {
                "io" => FaultKind::IoError,
                "short" => FaultKind::ShortRead,
                "panic" => FaultKind::Panic,
                _ => continue,
            },
            Some(_) => continue,
        };
        arm(point, kind, nth);
        armed += 1;
    }
    armed
}

fn trigger_panic(point: &str) -> ! {
    panic!("injected panic at fault point '{point}'")
}

/// One entry of a seeded fault plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// The fault point to arm.
    pub point: String,
    /// The kind to inject.
    pub kind: FaultKind,
    /// The 1-based hit number to start firing at.
    pub nth: u64,
}

/// Derives a deterministic fault plan from a seed: for each point, a
/// kind and a hit number in `1..=max_nth`. The same seed always yields
/// the same plan, so a failing fuzz run is reproducible from its seed
/// alone.
pub fn seeded_plan(seed: u64, points: &[&str], max_nth: u64) -> Vec<PlannedFault> {
    let max_nth = max_nth.max(1);
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        // SplitMix64: full-period, seedable, dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    points
        .iter()
        .map(|&point| {
            let kind = match next() % 3 {
                0 => FaultKind::IoError,
                1 => FaultKind::ShortRead,
                _ => FaultKind::Panic,
            };
            PlannedFault {
                point: point.to_string(),
                kind,
                nth: 1 + next() % max_nth,
            }
        })
        .collect()
}

/// Arms every entry of a plan (typically from [`seeded_plan`]).
pub fn arm_plan(plan: &[PlannedFault]) {
    for fault in plan {
        arm(&fault.point, fault.kind, fault.nth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; this crate's fault tests share one
    // lock so they cannot interleave arms/resets.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_points_pass_and_count_hits() {
        let _guard = locked();
        reset();
        assert!(fire("p.unarmed").is_ok());
        assert!(fire("p.unarmed").is_ok());
        assert_eq!(hits("p.unarmed"), 2);
        reset();
        assert_eq!(hits("p.unarmed"), 0);
    }

    #[test]
    fn io_fault_fires_from_nth_hit_onward() {
        let _guard = locked();
        reset();
        arm("p.io", FaultKind::IoError, 3);
        assert!(fire("p.io").is_ok());
        assert!(fire("p.io").is_ok());
        let err = fire("p.io").unwrap_err();
        assert!(err.to_string().contains("p.io"), "{err}");
        // Persistent from the Nth hit on.
        assert!(fire("p.io").is_err());
        reset();
    }

    #[test]
    fn short_read_maps_to_unexpected_eof() {
        let _guard = locked();
        reset();
        arm("p.short", FaultKind::ShortRead, 1);
        let err = fire("p.short").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        reset();
    }

    #[test]
    fn panic_faults_panic_and_are_isolatable() {
        let _guard = locked();
        reset();
        arm("p.panic", FaultKind::Panic, 1);
        let caught = crate::isolate(|| fire_panic("p.panic")).unwrap_err();
        assert!(caught.message.contains("p.panic"), "{}", caught.message);
        reset();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let points = ["a", "b", "c"];
        let p1 = seeded_plan(7, &points, 4);
        let p2 = seeded_plan(7, &points, 4);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 3);
        assert!(p1.iter().all(|f| (1..=4).contains(&f.nth)));
        // Some nearby seed must produce a different plan.
        assert!((0..16).any(|s| seeded_plan(s, &points, 4) != p1));
    }

    #[test]
    fn arm_plan_arms_every_entry() {
        let _guard = locked();
        reset();
        let plan = vec![PlannedFault {
            point: "p.planned".into(),
            kind: FaultKind::IoError,
            nth: 1,
        }];
        arm_plan(&plan);
        assert!(fire("p.planned").is_err());
        reset();
    }

    #[test]
    fn stall_faults_delay_then_succeed() {
        let _guard = locked();
        reset();
        arm("p.stall", FaultKind::Stall(30), 1);
        let start = std::time::Instant::now();
        assert!(fire("p.stall").is_ok());
        assert!(start.elapsed() >= std::time::Duration::from_millis(25));
        // Infallible sites also just delay, never panic.
        let caught = crate::isolate(|| fire_panic("p.stall"));
        assert!(caught.is_ok());
        reset();
    }

    #[test]
    fn env_plan_grammar_arms_points() {
        let _guard = locked();
        reset();
        // Serialized by the shared lock; the variable is process-global,
        // so set + parse + remove inside one critical section.
        std::env::set_var(
            "LOTUS_FAULT_PLAN",
            "p.env.io=io;p.env.stall=stall:1@2;bogus;p.env.bad=nope;p.env.short=short@3",
        );
        let armed = arm_from_env();
        std::env::remove_var("LOTUS_FAULT_PLAN");
        assert_eq!(armed, 3, "two malformed entries skipped");
        assert!(fire("p.env.io").is_err());
        assert!(fire("p.env.stall").is_ok()); // hit 1 < nth 2
        assert!(fire("p.env.stall").is_ok()); // stall fires: delays, Ok
        assert!(fire("p.env.short").is_ok());
        assert!(fire("p.env.short").is_ok());
        let err = fire("p.env.short").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        reset();
    }

    #[test]
    fn env_plan_absent_is_a_noop() {
        let _guard = locked();
        reset();
        std::env::remove_var("LOTUS_FAULT_PLAN");
        assert_eq!(arm_from_env(), 0);
        reset();
    }

    #[test]
    fn canonical_point_list_is_wellformed() {
        assert!(!POINTS.is_empty());
        let unique: std::collections::HashSet<_> = POINTS.iter().collect();
        assert_eq!(unique.len(), POINTS.len(), "duplicate fault point names");
        for point in POINTS {
            assert!(point.contains('.'), "point '{point}' lacks a layer prefix");
        }
    }
}
