//! Panic isolation.
//!
//! Counting phases run arbitrary (possibly buggy, possibly
//! fault-injected) kernels. [`isolate`] fences one unit of work with
//! [`std::panic::catch_unwind`] so a worker panic surfaces as a
//! structured [`PanicCaught`] value the caller can attach context to
//! (which phase died, what was counted so far) instead of aborting the
//! whole process.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// A panic converted into a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicCaught {
    /// The panic payload, stringified (`panic!` message or
    /// `"<non-string panic payload>"`).
    pub message: String,
}

impl std::fmt::Display for PanicCaught {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panic: {}", self.message)
    }
}

/// Runs `f`, converting a panic into `Err(PanicCaught)`.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers hand in reads
/// of shared graph structures and locally owned accumulators, which are
/// discarded on the error path, so no torn state escapes.
///
/// # Errors
/// Returns [`PanicCaught`] (with the panic message) when `f` panics.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, PanicCaught> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(value) => Ok(value),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err(PanicCaught { message })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_values_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn catches_str_panics() {
        let err = isolate(|| panic!("boom")).unwrap_err();
        assert_eq!(err.message, "boom");
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn catches_formatted_panics() {
        let err = isolate(|| panic!("bad tile {}", 7)).unwrap_err();
        assert_eq!(err.message, "bad tile 7");
    }

    #[test]
    fn catches_non_string_payloads() {
        let err = isolate(|| std::panic::panic_any(1234u32)).unwrap_err();
        assert_eq!(err.message, "<non-string panic payload>");
    }
}
