#![warn(missing_docs)]

//! Resilience primitives for the LOTUS workspace (DESIGN.md §8).
//!
//! A production triangle-counting service must survive hostile inputs,
//! runaway requests, and worker failures without taking the process down.
//! This crate provides the building blocks, free of any graph-specific
//! dependency so every layer of the workspace can use them:
//!
//! * [`CancelToken`] / [`Deadline`] / [`RunGuard`] — cooperative
//!   cancellation, checked by the counting kernels at tile/chunk
//!   granularity. A stopped run returns a [`StopReason`] plus whatever
//!   partial results were accumulated, instead of running forever.
//! * [`MemoryBudget`] — a byte budget that callers compare against
//!   pre-build footprint estimates so an oversized request degrades
//!   (smaller hub set, leaner algorithm) instead of OOMing.
//! * [`isolate()`] — `catch_unwind`-based panic isolation that converts a
//!   worker panic into a structured [`PanicCaught`] error.
//! * `fault` (behind the `fault-injection` feature) — a registry of
//!   named fault points ([`fault_point!`]) that deterministically inject
//!   I/O errors, short reads, or panics on the Nth hit, so tests can
//!   prove every failure path yields a clean typed error.

pub mod budget;
pub mod cancel;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod isolate;
pub mod retry;

pub use budget::MemoryBudget;
pub use cancel::{CancelToken, Deadline, RunGuard, StopReason};
pub use isolate::{isolate, PanicCaught};
pub use retry::{is_transient_io, RetryPolicy};

/// Declares a named fault point.
///
/// Two forms:
///
/// * `fault_point!("name")` — evaluates to `Result<(), std::io::Error>`;
///   intended for fallible call sites (`fault_point!("x")?;`). An armed
///   `IoError`/`ShortRead` fault returns `Err`, an armed `Panic` fault
///   panics.
/// * `fault_point!(panic: "name")` — a statement for infallible call
///   sites; any armed fault at this point panics (the surrounding phase
///   is expected to be wrapped in [`isolate()`]).
///
/// Without the `fault-injection` feature **on the calling crate**, both
/// forms compile to nothing (the first to `Ok(())`), so release builds
/// pay zero cost. Consumer crates forward their own `fault-injection`
/// feature to `lotus-resilience/fault-injection`.
#[macro_export]
macro_rules! fault_point {
    ($name:literal) => {{
        #[cfg(feature = "fault-injection")]
        let __fault_result = $crate::fault::fire($name);
        #[cfg(not(feature = "fault-injection"))]
        let __fault_result = ::core::result::Result::<(), ::std::io::Error>::Ok(());
        __fault_result
    }};
    (panic: $name:literal) => {{
        #[cfg(feature = "fault-injection")]
        $crate::fault::fire_panic($name);
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn fault_point_is_ok_when_feature_rules_say_so() {
        // In this crate's own test build the feature may or may not be
        // armed; with nothing armed the point must always pass.
        #[cfg(feature = "fault-injection")]
        crate::fault::reset();
        let r: Result<(), std::io::Error> = fault_point!("resilience.self_test");
        assert!(r.is_ok());
    }
}
