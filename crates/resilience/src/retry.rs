//! Capped exponential backoff with deterministic seeded jitter.
//!
//! Serving-layer clients retry two transient conditions: an
//! `Overloaded` admission-control rejection (the daemon answered; the
//! connection is fine) and a transient connect failure (refused/reset
//! while a daemon restarts). The delay schedule is fully determined by
//! `(policy, seed, attempt)`, so a load-generator run that retried is
//! reproducible from its seed alone — the same property the
//! fault-injection plans have.

use std::io;
use std::time::Duration;

/// A bounded retry schedule: up to `max_attempts` tries with capped
/// exponential backoff and seeded jitter between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Backoff base: the full delay before the first retry.
    pub base_delay_ms: u64,
    /// Ceiling the exponential doubling saturates at.
    pub max_delay_ms: u64,
    /// Jitter seed; the same seed yields the same delay sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// A single attempt, no retries, no delays.
    #[must_use]
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            seed: 0,
        }
    }

    /// The serving-layer default: 3 extra attempts, 2 ms base doubling
    /// to a 50 ms cap.
    #[must_use]
    pub fn serve_default(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 2,
            max_delay_ms: 50,
            seed,
        }
    }

    /// Whether a failed attempt number (1-based) has retries left.
    #[must_use]
    pub fn should_retry(&self, attempt: u32) -> bool {
        attempt < self.max_attempts
    }

    /// The delay before retry number `attempt` (1-based: the delay after
    /// the first failed attempt is `delay_for(1)`): `base · 2^(attempt-1)`
    /// capped at `max_delay_ms`, then jittered into the upper half of the
    /// interval (`[delay/2, delay]`) by a SplitMix64 draw on
    /// `(seed, attempt)`. Deterministic: same policy, same sequence.
    #[must_use]
    pub fn delay_for(&self, attempt: u32) -> Duration {
        if self.base_delay_ms == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(20);
        let uncapped = self.base_delay_ms.saturating_mul(1u64 << exp);
        let capped = uncapped.min(self.max_delay_ms.max(self.base_delay_ms));
        let jitter_span = capped / 2;
        let jitter = if jitter_span == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                % (jitter_span + 1)
        };
        Duration::from_millis(capped - jitter)
    }
}

/// Whether an I/O error is worth retrying: connection-level failures
/// that a daemon restart or a drained accept queue explain. Data-level
/// errors (corrupt frames, protocol violations) are never transient.
#[must_use]
pub fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
    )
}

/// Runs `op` under the policy, sleeping the schedule's delay between
/// attempts, retrying only errors `is_transient` accepts. Returns the
/// first success or the last error, plus how many retries were spent.
///
/// # Errors
/// Returns the final attempt's error when every attempt failed or a
/// non-transient error as soon as it appears.
pub fn retry<T, E>(
    policy: &RetryPolicy,
    mut is_transient: impl FnMut(&E) -> bool,
    mut op: impl FnMut() -> Result<T, E>,
) -> (Result<T, E>, u32) {
    let mut retries = 0;
    loop {
        let attempt = retries + 1;
        match op() {
            Ok(value) => return (Ok(value), retries),
            Err(e) if policy.should_retry(attempt) && is_transient(&e) => {
                std::thread::sleep(policy.delay_for(attempt));
                retries += 1;
            }
            Err(e) => return (Err(e), retries),
        }
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn delays_are_deterministic_capped_and_seed_sensitive() {
        let policy = RetryPolicy::serve_default(7);
        let seq: Vec<u64> = (1..=6)
            .map(|a| policy.delay_for(a).as_millis() as u64)
            .collect();
        let again: Vec<u64> = (1..=6)
            .map(|a| policy.delay_for(a).as_millis() as u64)
            .collect();
        assert_eq!(seq, again, "same policy, same schedule");
        for (i, &d) in seq.iter().enumerate() {
            let attempt = i as u32 + 1;
            let cap = policy
                .base_delay_ms
                .saturating_mul(1 << i.min(20))
                .min(policy.max_delay_ms);
            assert!(d <= cap, "attempt {attempt}: {d} > cap {cap}");
            assert!(d >= cap / 2, "attempt {attempt}: {d} below jitter floor");
        }
        let other = RetryPolicy::serve_default(8);
        assert!(
            (1..=6).any(|a| other.delay_for(a) != policy.delay_for(a)),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn no_retry_never_sleeps() {
        let policy = RetryPolicy::no_retry();
        assert!(!policy.should_retry(1));
        assert_eq!(policy.delay_for(1), Duration::ZERO);
    }

    #[test]
    fn retry_spends_attempts_only_on_transient_errors() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 2,
            seed: 1,
        };
        // Transient failures until the last attempt succeeds.
        let calls = Cell::new(0u32);
        let (result, retries) = retry(
            &policy,
            |_: &&str| true,
            || {
                calls.set(calls.get() + 1);
                if calls.get() < 3 {
                    Err("transient")
                } else {
                    Ok(calls.get())
                }
            },
        );
        assert_eq!(result, Ok(3));
        assert_eq!(retries, 2);

        // A non-transient error short-circuits at once.
        let calls = Cell::new(0u32);
        let (result, retries) = retry(
            &policy,
            |_: &&str| false,
            || -> Result<(), &str> {
                calls.set(calls.get() + 1);
                Err("fatal")
            },
        );
        assert_eq!(result, Err("fatal"));
        assert_eq!(retries, 0);
        assert_eq!(calls.get(), 1);

        // Exhausted transient retries surface the last error.
        let (result, retries) = retry(
            &policy,
            |_: &&str| true,
            || -> Result<(), &str> { Err("still down") },
        );
        assert_eq!(result, Err("still down"));
        assert_eq!(retries, 2);
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient_io(&io::Error::from(
            io::ErrorKind::ConnectionRefused
        )));
        assert!(is_transient_io(&io::Error::from(
            io::ErrorKind::ConnectionReset
        )));
        assert!(!is_transient_io(&io::Error::other("corrupt frame")));
        assert!(!is_transient_io(&io::Error::from(
            io::ErrorKind::UnexpectedEof
        )));
    }
}
