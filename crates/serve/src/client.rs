//! A minimal blocking client for the `lotus-serve` protocol.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{read_response, write_request, ProtoError, Request, Response};

/// One connection to a daemon; requests run strictly in order.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `host:port` form).
    ///
    /// # Errors
    /// Returns the connect failure as [`ProtoError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds how long one [`Client::call`] may wait for its response.
    ///
    /// # Errors
    /// Returns the socket-option failure as [`ProtoError::Io`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    /// Propagates framing, checksum, and transport failures as
    /// [`ProtoError`]; after an error the connection should be dropped.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtoError> {
        write_request(&mut self.stream, request)?;
        read_response(&mut self.stream)
    }
}
