//! A minimal blocking client for the `lotus-serve` protocol.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use lotus_resilience::retry::{is_transient_io, retry, RetryPolicy};

use crate::proto::{read_response, write_request, ErrorKind, ProtoError, Request, Response};

/// One connection to a daemon; requests run strictly in order.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (any `host:port` form).
    ///
    /// # Errors
    /// Returns the connect failure as [`ProtoError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects with capped-backoff retries on *transient* connect
    /// failures (refused/reset — e.g. a daemon mid-restart). Returns
    /// the client plus how many retries were spent.
    ///
    /// # Errors
    /// The final attempt's failure as [`ProtoError::Io`]; non-transient
    /// errors are returned immediately without retrying.
    pub fn connect_with_retry(
        addr: &str,
        policy: &RetryPolicy,
    ) -> Result<(Client, u32), ProtoError> {
        let (result, retries) = retry(
            policy,
            |e: &ProtoError| matches!(e, ProtoError::Io(io) if is_transient_io(io)),
            || Client::connect(addr),
        );
        result.map(|client| (client, retries))
    }

    /// Bounds how long one [`Client::call`] may wait for its response.
    ///
    /// # Errors
    /// Returns the socket-option failure as [`ProtoError::Io`].
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ProtoError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    /// Propagates framing, checksum, and transport failures as
    /// [`ProtoError`]; after an error the connection should be dropped.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtoError> {
        write_request(&mut self.stream, request)?;
        read_response(&mut self.stream)
    }

    /// Like [`Client::call`], but retries `Overloaded` rejections under
    /// `policy` (the daemon answered — the connection stays usable, the
    /// queue was just full). Returns the final response plus how many
    /// retries were spent. Transport errors are *not* retried here: the
    /// stream cannot be resynchronized, so the caller must reconnect.
    ///
    /// # Errors
    /// The same failures as [`Client::call`], from whichever attempt
    /// failed.
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> Result<(Response, u32), ProtoError> {
        let mut retries = 0;
        loop {
            let attempt = retries + 1;
            let response = self.call(request)?;
            let overloaded = matches!(
                response,
                Response::Error {
                    kind: ErrorKind::Overloaded,
                    ..
                }
            );
            if overloaded && policy.should_retry(attempt) {
                std::thread::sleep(policy.delay_for(attempt));
                retries += 1;
                continue;
            }
            return Ok((response, retries));
        }
    }
}
