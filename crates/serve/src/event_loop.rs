//! The readiness event loop: per-connection state machines multiplexed
//! over `lotus_net::Poller` (DESIGN.md §14).
//!
//! One acceptor thread owns the listener and the connection quota; a
//! small set of event-loop threads each own a poller, a timer wheel,
//! and the connections handed to them round-robin. A connection's life
//! is a state machine:
//!
//! ```text
//!   read-accumulate ──► incremental parse ──► dispatch
//!        ▲   (pause: inflight/backlog quota)     │ inline or pool
//!        │                                       ▼
//!   write-drain ◄── in-order reassembly ◄── completion queue
//!   (partial-write resume via EPOLLOUT)
//! ```
//!
//! Pipelining: a client may send many frames without waiting; each
//! request gets a per-connection sequence number at parse time and
//! responses are flushed strictly in that order, whatever order the
//! worker pool finishes them in. Backpressure is quota-based, never an
//! error: once `max_inflight` requests are outstanding (or the write
//! backlog passes [`WRITE_BACKLOG_CAP`]) the loop simply stops reading
//! that socket until completions drain it.
//!
//! Error taxonomy (unchanged from the blocking daemon): framing damage
//! → typed `protocol` error then close (the stream cannot be
//! resynchronized); a CRC-valid frame that does not decode → typed
//! `bad_request`, connection stays open; EOF between frames → silent
//! close. Idle and slow-loris connections are evicted by the
//! [`TimerWheel`] once they make no read progress for the configured
//! idle timeout with nothing in flight.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lotus_net::{Event, Events, Interest, Poller, Token, Waker};
use lotus_telemetry::{counters, Counter};

use crate::proto::{frame_response, try_parse_frame, ErrorKind, FrameProgress, Request, Response};
use crate::server::{
    overloaded_response, request_deadline, run_inline, run_pooled, LoopCounters, ServeConfig,
    ServerState,
};
use crate::timer::TimerWheel;

/// Waker token on every poller (acceptor and loops).
const WAKER_TOKEN: u64 = 0;
/// Listener token on the acceptor's poller.
const LISTENER_TOKEN: u64 = 1;
/// First token handed to a connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Per-connection cap on buffered response bytes before the loop stops
/// reading more requests from that socket (slow-reader backpressure).
const WRITE_BACKLOG_CAP: usize = 8 << 20;

/// Timer-wheel slot width; idle timeouts fire at most one slot late.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(25);
/// Timer-wheel slots (one revolution = 256 × 25 ms = 6.4 s).
const WHEEL_SLOTS: usize = 256;

/// Upper bound on one poller wait, so loops re-check shutdown and
/// incoming queues even with an empty timer wheel.
const MAX_WAIT: Duration = Duration::from_millis(500);

/// How long a drain waits for in-flight responses to flush before
/// force-closing the stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Resolved network configuration (zeros replaced by defaults).
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetConfig {
    pub(crate) event_threads: usize,
    pub(crate) max_conns: usize,
    pub(crate) max_inflight: usize,
    pub(crate) idle_timeout: Duration,
}

impl NetConfig {
    /// Applies defaults to the user-facing [`ServeConfig`] fields.
    pub(crate) fn resolve(config: &ServeConfig) -> NetConfig {
        let event_threads = if config.event_threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| (p.get() / 4).clamp(1, 4))
        } else {
            config.event_threads
        };
        NetConfig {
            event_threads,
            max_conns: if config.max_conns == 0 {
                4096
            } else {
                config.max_conns
            },
            max_inflight: if config.max_inflight == 0 {
                64
            } else {
                config.max_inflight
            },
            idle_timeout: if config.idle_timeout.is_zero() {
                Duration::from_secs(60)
            } else {
                config.idle_timeout
            },
        }
    }
}

/// A finished pool job's response, routed back to the owning loop.
struct Completion {
    token: u64,
    seq: u64,
    frame: Vec<u8>,
}

/// The cross-thread face of one event loop: the acceptor pushes
/// sockets into `incoming`, pool workers push into `completions`, and
/// both wake the loop's poller afterwards.
struct LoopShared {
    incoming: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
    /// This loop's always-on activity counters (readiness events and
    /// wakeups), published per thread through `Stats`.
    counters: Arc<LoopCounters>,
}

impl LoopShared {
    fn push_completion(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(completion);
        self.waker.wake();
    }
}

/// Spawns the event-loop threads and the acceptor/orchestrator thread;
/// returns the orchestrator handle (joining it means the daemon's
/// network side has fully shut down and the pool is drained).
///
/// # Errors
/// Returns the OS error when a poller, waker, or thread cannot be
/// created.
pub(crate) fn start(
    listener: TcpListener,
    state: Arc<ServerState>,
    config: NetConfig,
) -> std::io::Result<JoinHandle<()>> {
    let mut loops: Vec<Arc<LoopShared>> = Vec::with_capacity(config.event_threads);
    let mut loop_handles = Vec::with_capacity(config.event_threads);
    for i in 0..config.event_threads {
        let poller = Poller::new()?;
        let waker = Arc::new(poller.waker(Token(WAKER_TOKEN))?);
        let loop_counters = Arc::new(LoopCounters::default());
        let shared = Arc::new(LoopShared {
            incoming: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
            counters: Arc::clone(&loop_counters),
        });
        state.net.add_waker(waker);
        state.net.add_loop_counters(loop_counters);
        loops.push(Arc::clone(&shared));
        let loop_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("lotus-serve-loop-{i}"))
            .spawn(move || event_loop(&poller, &shared, &loop_state, config))?;
        loop_handles.push(handle);
    }

    let accept_poller = Poller::new()?;
    accept_poller.register(listener.as_raw_fd(), Token(LISTENER_TOKEN), Interest::READ)?;
    let accept_waker = Arc::new(accept_poller.waker(Token(WAKER_TOKEN))?);
    state.net.add_waker(accept_waker);

    std::thread::Builder::new()
        .name("lotus-serve-accept".to_string())
        .spawn(move || {
            accept_loop(&accept_poller, &listener, &loops, &state, config);
            // Park the acceptor: close the listening socket before the
            // loops drain, so new connects are refused immediately.
            let _ = accept_poller.deregister(listener.as_raw_fd());
            drop(listener);
            for shared in &loops {
                shared.waker.wake();
            }
            for handle in loop_handles {
                let _ = handle.join();
            }
            // Loops are gone: no submitter is left, drain the pool.
            state.pool().shutdown();
        })
}

/// Accepts until drain: quota check, nonblocking setup, round-robin
/// handoff to the loops.
fn accept_loop(
    poller: &Poller,
    listener: &TcpListener,
    loops: &[Arc<LoopShared>],
    state: &Arc<ServerState>,
    config: NetConfig,
) {
    let mut events = Events::with_capacity(8);
    let mut next_loop = 0usize;
    while !state.shutdown_token().is_cancelled() {
        let _ = poller.wait(&mut events, Some(MAX_WAIT));
        if state.shutdown_token().is_cancelled() {
            break;
        }
        loop {
            // accept4(SOCK_NONBLOCK) where available: the socket is born
            // nonblocking, so there is no accept-then-configure window.
            match lotus_net::accept_nonblocking(listener) {
                Ok(Some(stream)) => {
                    if state.net.conns_open.load(Ordering::Relaxed) >= config.max_conns as u64 {
                        refuse_over_quota(stream, state);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    state.net.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    state.net.conns_open.fetch_add(1, Ordering::Relaxed);
                    counters::incr(Counter::ConnsAccepted);
                    let shared = &loops[next_loop % loops.len()];
                    next_loop = next_loop.wrapping_add(1);
                    shared
                        .incoming
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(stream);
                    shared.waker.wake();
                }
                Ok(None) => break,
                // Transient accept failures (EMFILE, ECONNABORTED...):
                // back off to the poller instead of spinning. EINTR is
                // retried inside accept_nonblocking.
                Err(_) => break,
            }
        }
    }
}

/// Over the connection quota: a best-effort `Overloaded` frame, then
/// close. Ties the quota into the same accounting admission control
/// uses, so operators see one signal for both.
fn refuse_over_quota(stream: TcpStream, state: &Arc<ServerState>) {
    let response = overloaded_response(state);
    if stream.set_nonblocking(true).is_ok() {
        if let Ok(frame) = frame_response(&response) {
            let _ = (&stream).write(&frame);
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed received bytes (read-accumulate buffer).
    read_buf: Vec<u8>,
    /// Encoded frames ready to write, in flush order.
    out: Vec<u8>,
    /// How much of `out` has reached the socket (partial-write resume).
    out_pos: usize,
    /// Completed responses waiting for earlier sequence numbers.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Next sequence number to assign at parse time.
    next_seq: u64,
    /// Next sequence number to append to `out`.
    next_to_flush: u64,
    /// Pool jobs outstanding for this connection.
    inflight: usize,
    /// Timer generation; bumped on every read progress, so stale wheel
    /// entries can never evict a live connection.
    gen: u64,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// No more reads: EOF, framing damage, or drain.
    read_closed: bool,
    /// Close once everything queued has flushed (damage or `Draining`).
    close_after_flush: bool,
    /// Transport died; drop without flushing.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: BTreeMap::new(),
            next_seq: 0,
            next_to_flush: 0,
            inflight: 0,
            gen: 0,
            interest: Interest::READ,
            read_closed: false,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Bytes queued toward the socket but not yet written.
    fn backlog(&self) -> usize {
        (self.out.len() - self.out_pos) + self.pending.values().map(Vec::len).sum::<usize>()
    }

    /// Whether the loop should stop pulling bytes off this socket.
    fn paused(&self, config: &NetConfig) -> bool {
        self.inflight >= config.max_inflight || self.backlog() > WRITE_BACKLOG_CAP
    }

    /// Nothing left to do: every accepted request answered and flushed.
    fn finished(&self) -> bool {
        self.dead
            || ((self.read_closed || self.close_after_flush)
                && self.inflight == 0
                && self.pending.is_empty()
                && self.out_pos == self.out.len())
    }

    /// Truly idle: safe for the timer wheel to evict.
    fn idle(&self) -> bool {
        self.inflight == 0 && self.pending.is_empty() && self.out_pos == self.out.len()
    }
}

/// Encodes a response into a complete frame; encoding failures (a
/// message overflowing its length prefix — not reachable from our own
/// responses) degrade to a generic error frame rather than a panic.
fn encode_frame(response: &Response) -> Vec<u8> {
    frame_response(response).unwrap_or_else(|_| {
        frame_response(&Response::error(
            ErrorKind::WorkerPanic,
            "response encoding failed",
        ))
        .unwrap_or_default()
    })
}

/// The loop proper: owns its poller, wheel, and connection table.
#[allow(clippy::too_many_lines)]
fn event_loop(
    poller: &Poller,
    shared: &Arc<LoopShared>,
    state: &Arc<ServerState>,
    config: NetConfig,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut wheel = TimerWheel::new(WHEEL_GRANULARITY, WHEEL_SLOTS, Instant::now());
    let mut events = Events::with_capacity(256);
    let mut fired: Vec<(u64, u64)> = Vec::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut draining_since: Option<Instant> = None;

    loop {
        let timeout = wheel
            .next_deadline(Instant::now())
            .map_or(MAX_WAIT, |d| d.min(MAX_WAIT));
        let _ = poller.wait(&mut events, Some(timeout));
        counters::incr(Counter::LoopWakeups);
        counters::add(Counter::ReadinessEvents, events.len() as u64);
        shared
            .counters
            .loop_wakeups
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .readiness_events
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        let now = Instant::now();

        // 1. Readiness events for existing connections.
        for event in &events {
            let Event {
                token: Token(token),
                readable,
                writable,
                closed,
            } = *event;
            if token == WAKER_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if writable || closed {
                flush_out(conn);
            }
            if readable || closed {
                pump_reads(conn, token, shared, state, &config, &mut wheel, now);
            }
            refresh(poller, token, conn);
        }

        // 2. Adopt connections handed over by the acceptor.
        let adopted: Vec<TcpStream> = shared
            .incoming
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for stream in adopted {
            let token = next_token;
            next_token += 1;
            let mut conn = Conn::new(stream);
            if poller
                .register(conn.stream.as_raw_fd(), Token(token), conn.interest)
                .is_err()
            {
                state.net.conns_open.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            wheel.arm(now, config.idle_timeout, token, conn.gen);
            // Bytes may have arrived before registration; with a
            // level-triggered poller a missed edge costs nothing, but
            // serving them now saves one wait.
            pump_reads(&mut conn, token, shared, state, &config, &mut wheel, now);
            refresh(poller, token, &mut conn);
            conns.insert(token, conn);
        }

        // 3. Completions from the worker pool: reassemble in order.
        let completed: Vec<Completion> = shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for completion in completed {
            let Some(conn) = conns.get_mut(&completion.token) else {
                continue; // connection died before its response finished
            };
            conn.inflight -= 1;
            queue_frame(conn, completion.seq, completion.frame);
            // The inflight quota may have paused parsing mid-buffer;
            // resume from the already-buffered bytes.
            process_frames(conn, completion.token, shared, state, &config);
            flush_out(conn);
            refresh(poller, completion.token, conn);
        }

        // 4. Timer wheel: evict idle / slow-loris connections.
        wheel.advance(now, &mut fired);
        for (token, gen) in fired.drain(..) {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.gen != gen {
                continue; // stale entry; the connection made progress
            }
            if conn.idle() && !conn.read_closed {
                // No read progress for a full idle timeout and nothing
                // owed: evict silently (slow-loris sockets land here
                // with a half-received frame in read_buf).
                conn.dead = true;
            } else {
                // Still working (long count, slow flush): re-arm.
                conn.gen += 1;
                wheel.arm(now, config.idle_timeout, token, conn.gen);
            }
        }

        // 5. Drain transition: stop reading everywhere, flush, close.
        if state.shutdown_token().is_cancelled() {
            if draining_since.is_none() {
                draining_since = Some(now);
                for conn in conns.values_mut() {
                    conn.read_closed = true;
                }
            }
            if draining_since.is_some_and(|since| now.duration_since(since) > DRAIN_GRACE) {
                for conn in conns.values_mut() {
                    conn.dead = true;
                }
            }
        }

        // 6. Close finished connections.
        conns.retain(|token, conn| {
            if conn.finished() {
                let _ = poller.deregister(conn.stream.as_raw_fd());
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                let _ = token;
                state.net.conns_open.fetch_sub(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        });

        if draining_since.is_some() && conns.is_empty() {
            let empty = shared
                .incoming
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty();
            if empty {
                break;
            }
        }
    }
}

/// Re-registers the connection's interest set when it changed:
/// readable while not paused/closed, writable while bytes are queued.
fn refresh(poller: &Poller, token: u64, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    let want = Interest {
        readable: !conn.read_closed,
        writable: conn.out_pos < conn.out.len(),
    };
    if want != conn.interest {
        if poller
            .reregister(conn.stream.as_raw_fd(), Token(token), want)
            .is_err()
        {
            conn.dead = true;
            return;
        }
        conn.interest = want;
    }
}

/// Drains the socket into `read_buf` until `WouldBlock`, EOF, or a
/// quota pause, parsing frames as they complete.
fn pump_reads(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<LoopShared>,
    state: &Arc<ServerState>,
    config: &NetConfig,
    wheel: &mut TimerWheel,
    now: Instant,
) {
    let mut chunk = [0u8; 16 * 1024];
    while !conn.read_closed && !conn.dead && !conn.paused(config) {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF: between frames this is a clean close; mid-frame
                // the truncated remainder in read_buf is unanswerable
                // and simply dropped. In-flight responses still flush
                // (half-close support).
                conn.read_closed = true;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                // Read progress: re-arm the idle timer.
                conn.gen += 1;
                wheel.arm(now, config.idle_timeout, token, conn.gen);
                process_frames(conn, token, shared, state, config);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => conn.dead = true,
        }
    }
    flush_out(conn);
}

/// Parses every complete frame out of `read_buf` (respecting the
/// inflight quota) and dispatches each request.
fn process_frames(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<LoopShared>,
    state: &Arc<ServerState>,
    config: &NetConfig,
) {
    while !conn.read_closed && !conn.dead && conn.inflight < config.max_inflight {
        match try_parse_frame(&conn.read_buf) {
            FrameProgress::Incomplete => break,
            FrameProgress::Damaged(e) => {
                // The stream cannot be resynchronized: answer with a
                // typed protocol error, then close after flushing.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                queue_frame(
                    conn,
                    seq,
                    encode_frame(&Response::error(ErrorKind::Protocol, e.to_string())),
                );
                conn.read_buf.clear();
                conn.read_closed = true;
                conn.close_after_flush = true;
            }
            FrameProgress::Frame { payload, consumed } => {
                conn.read_buf.drain(..consumed);
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match Request::decode(&payload) {
                    Err(e) => {
                        // CRC-valid but undecodable: the stream is still
                        // synchronized — answer and keep the connection.
                        queue_frame(
                            conn,
                            seq,
                            encode_frame(&Response::error(ErrorKind::BadRequest, e.to_string())),
                        );
                    }
                    Ok(request) => dispatch(conn, token, seq, request, shared, state),
                }
            }
        }
    }
}

/// Routes one decoded request: fast admin inline on the loop thread,
/// everything else through the bounded pool.
fn dispatch(
    conn: &mut Conn,
    token: u64,
    seq: u64,
    request: Request,
    shared: &Arc<LoopShared>,
    state: &Arc<ServerState>,
) {
    if let Some(response) = run_inline(&request, state) {
        let draining = matches!(response, Response::Draining);
        queue_frame(conn, seq, encode_frame(&response));
        if draining {
            // The drain reply is this connection's last frame; frames
            // already parsed behind it still get ShuttingDown below.
            conn.read_closed = true;
            conn.close_after_flush = true;
        }
        return;
    }
    if state.shutdown_token().is_cancelled() {
        queue_frame(
            conn,
            seq,
            encode_frame(&Response::error(
                ErrorKind::ShuttingDown,
                "daemon is draining",
            )),
        );
        return;
    }
    // Deadline fixed at admission: queueing time counts against it.
    let deadline = request_deadline(&request);
    let job_state = Arc::clone(state);
    let job_shared = Arc::clone(shared);
    let submitted = state.pool().try_submit(Box::new(move || {
        let response = run_pooled(&request, deadline, &job_state);
        job_shared.push_completion(Completion {
            token,
            seq,
            frame: encode_frame(&response),
        });
    }));
    if submitted {
        conn.inflight += 1;
    } else {
        queue_frame(conn, seq, encode_frame(&overloaded_response(state)));
    }
}

/// Inserts a completed response and appends every now-contiguous
/// response to the write buffer (in-order pipelining guarantee).
fn queue_frame(conn: &mut Conn, seq: u64, frame: Vec<u8>) {
    conn.pending.insert(seq, frame);
    while let Some(frame) = conn.pending.remove(&conn.next_to_flush) {
        conn.out.extend_from_slice(&frame);
        conn.next_to_flush += 1;
    }
}

/// Writes as much of `out` as the socket accepts; a short write leaves
/// `out_pos` mid-buffer and the poller's writable event resumes it.
fn flush_out(conn: &mut Conn) {
    if conn.dead {
        return;
    }
    while conn.out_pos < conn.out.len() {
        match (&conn.stream).write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                counters::incr(Counter::PartialWrites);
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}
