//! The append-only manifest journal of the durability layer.
//!
//! `<data_dir>/journal.lotj` records the registry's *logical* state —
//! which names are durably registered with which spec — as a sequence
//! of CRC-framed records after a fixed header:
//!
//! ```text
//! magic   "LOTJ"          4 bytes
//! version u32             4 bytes  (currently 1)
//! record* :=
//!   len   u32             4 bytes  (payload bytes, <= 1 MiB)
//!   payload               len bytes
//!   crc32 u32             4 bytes  (over len + payload)
//! ```
//!
//! Payloads start with a kind byte: `1` Register (name, spec), `2`
//! Evict (name), `3` Checkpoint (full entry list; replaces all prior
//! state on replay). Strings are `u32` length + UTF-8 bytes.
//!
//! An append writes the whole frame, flushes, and `sync_data`s before
//! returning, so a record is either durable or — if the process dies
//! mid-write — a *torn tail* that [`read_journal`] detects by CRC and
//! ignores. Replay therefore recovers exactly the prefix of records
//! that were acknowledged as synced. See DESIGN.md §13.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use lotus_graph::crc32::crc32;
use lotus_resilience::fault_point;

/// Journal file magic.
pub const JOURNAL_MAGIC: &[u8; 4] = b"LOTJ";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Upper bound on a single record payload; a length field beyond this
/// is corruption, not a request to preallocate.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

/// One logical manifest record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// `name` was durably registered from `spec`.
    Register {
        /// Registry key.
        name: String,
        /// Source spec string (`rmat:...`, `er:...`, `path:...`).
        spec: String,
    },
    /// `name` was evicted; its snapshot is no longer needed.
    Evict {
        /// Registry key.
        name: String,
    },
    /// The complete durable set at checkpoint time; replay discards all
    /// prior state and starts from these `(name, spec)` entries.
    Checkpoint {
        /// Every durable `(name, spec)` pair.
        entries: Vec<(String, String)>,
    },
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            JournalRecord::Register { name, spec } => {
                p.push(1);
                put_str(&mut p, name);
                put_str(&mut p, spec);
            }
            JournalRecord::Evict { name } => {
                p.push(2);
                put_str(&mut p, name);
            }
            JournalRecord::Checkpoint { entries } => {
                p.push(3);
                p.extend_from_slice(
                    &u32::try_from(entries.len())
                        .unwrap_or(u32::MAX)
                        .to_le_bytes(),
                );
                for (name, spec) in entries {
                    put_str(&mut p, name);
                    put_str(&mut p, spec);
                }
            }
        }
        p
    }

    fn decode(payload: &[u8]) -> Result<JournalRecord, String> {
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        let kind = cur.u8()?;
        let rec = match kind {
            1 => JournalRecord::Register {
                name: cur.string("register name")?,
                spec: cur.string("register spec")?,
            },
            2 => JournalRecord::Evict {
                name: cur.string("evict name")?,
            },
            3 => {
                let count = cur.u32("checkpoint count")?;
                // Bounded by the record size, not the declared count.
                let mut entries = Vec::new();
                for _ in 0..count {
                    entries.push((
                        cur.string("checkpoint name")?,
                        cur.string("checkpoint spec")?,
                    ));
                }
                JournalRecord::Checkpoint { entries }
            }
            other => return Err(format!("unknown record kind {other}")),
        };
        if cur.pos != payload.len() {
            return Err(format!(
                "{} trailing byte(s) after record",
                payload.len() - cur.pos
            ));
        }
        Ok(rec)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u32::try_from(s.len()).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| "record ended before kind byte".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("record ended inside {what}"))?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u32::from_le_bytes(raw))
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("record ended inside {what} bytes"))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| format!("{what} is not UTF-8"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }
}

/// An open journal file positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates, writing the header) the journal at `path`.
    /// The header of an existing file is *not* validated here — startup
    /// recovery has already read it via [`read_journal`].
    ///
    /// # Errors
    /// Any I/O error creating or opening the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            file.write_all(JOURNAL_MAGIC)?;
            file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
            file.sync_data()?;
            // A brand-new journal also needs its directory entry made
            // durable, mirroring the snapshot rename path — otherwise a
            // power loss can vanish the file with its synced records.
            sync_parent_dir(&path)?;
        }
        Ok(Journal { file, path })
    }

    /// Path the journal lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and syncs it to disk. When this returns `Ok`,
    /// the record survives a crash; on error the file may end in a torn
    /// frame that replay will detect and discard.
    ///
    /// # Errors
    /// Any I/O error writing or syncing; an armed `serve.journal.append`
    /// fault fires *between* the two halves of the frame so the injected
    /// failure leaves a genuine torn tail behind.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let payload = record.encode();
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "journal record too large"))?;
        if len > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "journal record too large",
            ));
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());

        let split = frame.len() / 2;
        self.file.write_all(&frame[..split])?;
        fault_point!("serve.journal.append")?;
        self.file.write_all(&frame[split..])?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// What a full journal read recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalReadout {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Why reading stopped early, if it did: a torn tail (crash
    /// mid-append) or mid-file corruption. `None` means the file was
    /// clean to the end.
    pub damage: Option<String>,
}

impl JournalReadout {
    /// Folds the record sequence into the final logical `(name, spec)`
    /// map: `Register` inserts (last write wins), `Evict` removes,
    /// `Checkpoint` replaces everything.
    #[must_use]
    pub fn fold(&self) -> Vec<(String, String)> {
        let mut entries: Vec<(String, String)> = Vec::new();
        for rec in &self.records {
            match rec {
                JournalRecord::Register { name, spec } => {
                    entries.retain(|(n, _)| n != name);
                    entries.push((name.clone(), spec.clone()));
                }
                JournalRecord::Evict { name } => entries.retain(|(n, _)| n != name),
                JournalRecord::Checkpoint { entries: cp } => {
                    entries.clear();
                    entries.extend(cp.iter().cloned());
                }
            }
        }
        entries
    }
}

/// Reads every intact record from the journal at `path`. A missing file
/// is an empty journal. Damage — bad header, torn tail, CRC mismatch,
/// undecodable payload — ends the read at the last intact record and is
/// reported in [`JournalReadout::damage`] rather than returned as an
/// error: the synced prefix is still authoritative.
///
/// # Errors
/// Only genuine I/O failures (permissions, device errors); corruption
/// is never an `Err`.
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<JournalReadout> {
    let mut file = match File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(JournalReadout {
                records: Vec::new(),
                damage: None,
            })
        }
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;

    let mut out = JournalReadout {
        records: Vec::new(),
        damage: None,
    };
    if bytes.len() < 8 {
        out.damage = Some(format!("header truncated at {} byte(s)", bytes.len()));
        return Ok(out);
    }
    if &bytes[..4] != JOURNAL_MAGIC {
        out.damage = Some("bad journal magic".to_string());
        return Ok(out);
    }
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&bytes[4..8]);
    let version = u32::from_le_bytes(ver);
    if version != JOURNAL_VERSION {
        out.damage = Some(format!("unsupported journal version {version}"));
        return Ok(out);
    }

    let mut pos = 8usize;
    while pos < bytes.len() {
        let Some(frame_head) = bytes.get(pos..pos + 4) else {
            out.damage = Some(format!("torn length prefix at offset {pos}"));
            break;
        };
        let mut raw = [0u8; 4];
        raw.copy_from_slice(frame_head);
        let len = u32::from_le_bytes(raw);
        if len > MAX_RECORD_BYTES {
            out.damage = Some(format!("record length {len} at offset {pos} exceeds cap"));
            break;
        }
        let payload_end = pos + 4 + len as usize;
        let crc_end = payload_end + 4;
        if crc_end > bytes.len() {
            out.damage = Some(format!("torn record at offset {pos}"));
            break;
        }
        let mut stored = [0u8; 4];
        stored.copy_from_slice(&bytes[payload_end..crc_end]);
        if u32::from_le_bytes(stored) != crc32(&bytes[pos..payload_end]) {
            out.damage = Some(format!("crc mismatch at offset {pos}"));
            break;
        }
        match JournalRecord::decode(&bytes[pos + 4..payload_end]) {
            Ok(rec) => out.records.push(rec),
            Err(why) => {
                out.damage = Some(format!("undecodable record at offset {pos}: {why}"));
                break;
            }
        }
        pos = crc_end;
    }
    Ok(out)
}

/// Atomically replaces the journal with a fresh header plus a single
/// `Checkpoint` of `entries` (compaction): write to a temp file, sync,
/// rename over the old journal.
///
/// # Errors
/// Any I/O error writing, syncing, or renaming.
pub fn rewrite(path: impl AsRef<Path>, entries: &[(String, String)]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("lotj.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        let payload = JournalRecord::Checkpoint {
            entries: entries.to_vec(),
        }
        .encode();
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "checkpoint too large"))?;
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&frame)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Best-effort fsync of `path`'s parent directory so a rename is
/// durable, not just ordered. Platforms that refuse directory syncs
/// (some filesystems do) are tolerated.
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_data();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lotus-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Register {
                name: "a".into(),
                spec: "rmat:6:4:1".into(),
            },
            JournalRecord::Register {
                name: "b".into(),
                spec: "er:100:400:1".into(),
            },
            JournalRecord::Evict { name: "a".into() },
            JournalRecord::Checkpoint {
                entries: vec![("b".into(), "er:100:400:1".into())],
            },
        ]
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tmp_dir("round");
        let path = dir.join("journal.lotj");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let readout = read_journal(&path).unwrap();
        assert_eq!(readout.damage, None);
        assert_eq!(readout.records, sample_records());
        assert_eq!(
            readout.fold(),
            vec![("b".to_string(), "er:100:400:1".to_string())]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fold_applies_register_evict_checkpoint_semantics() {
        let readout = JournalReadout {
            records: vec![
                JournalRecord::Register {
                    name: "x".into(),
                    spec: "rmat:6:4:1".into(),
                },
                // Re-register replaces the spec (last write wins).
                JournalRecord::Register {
                    name: "x".into(),
                    spec: "rmat:6:4:2".into(),
                },
                JournalRecord::Register {
                    name: "y".into(),
                    spec: "er:100:200:3".into(),
                },
                JournalRecord::Evict { name: "y".into() },
            ],
            damage: None,
        };
        assert_eq!(
            readout.fold(),
            vec![("x".to_string(), "rmat:6:4:2".to_string())]
        );
    }

    #[test]
    fn torn_tail_keeps_synced_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("journal.lotj");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the final record: the first three must
        // survive, the tail must be reported as damage, never a panic.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let readout = read_journal(&path).unwrap();
        assert_eq!(readout.records.len(), 3);
        assert!(readout.damage.is_some(), "torn tail must be reported");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_mismatch_stops_replay() {
        let dir = tmp_dir("crc");
        let path = dir.join("journal.lotj");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let mut full = std::fs::read(&path).unwrap();
        // Flip one payload bit in the second record (skip header +
        // first frame).
        let second_start = {
            let mut raw = [0u8; 4];
            raw.copy_from_slice(&full[8..12]);
            8 + 4 + u32::from_le_bytes(raw) as usize + 4
        };
        full[second_start + 6] ^= 0x40;
        std::fs::write(&path, &full).unwrap();
        let readout = read_journal(&path).unwrap();
        assert_eq!(readout.records.len(), 1, "only the first record survives");
        assert!(readout.damage.unwrap().contains("crc mismatch"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let readout = read_journal("/definitely/not/here/journal.lotj").unwrap();
        assert!(readout.records.is_empty());
        assert_eq!(readout.damage, None);
    }

    #[test]
    fn bad_header_is_damage_not_error() {
        let dir = tmp_dir("hdr");
        let path = dir.join("journal.lotj");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00").unwrap();
        let readout = read_journal(&path).unwrap();
        assert!(readout.records.is_empty());
        assert!(readout.damage.unwrap().contains("magic"));
        std::fs::write(&path, b"LO").unwrap();
        assert!(read_journal(&path)
            .unwrap()
            .damage
            .unwrap()
            .contains("truncated"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_to_one_checkpoint() {
        let dir = tmp_dir("rw");
        let path = dir.join("journal.lotj");
        let mut j = Journal::open(&path).unwrap();
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let entries = read_journal(&path).unwrap().fold();
        rewrite(&path, &entries).unwrap();
        let readout = read_journal(&path).unwrap();
        assert_eq!(readout.records.len(), 1);
        assert_eq!(readout.fold(), entries);
        // The compacted journal accepts further appends.
        let mut j = Journal::open(&path).unwrap();
        j.append(&JournalRecord::Register {
            name: "c".into(),
            spec: "rmat:6:4:9".into(),
        })
        .unwrap();
        drop(j);
        assert_eq!(read_journal(&path).unwrap().records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_length_field_is_damage() {
        let dir = tmp_dir("huge");
        let path = dir.join("journal.lotj");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(JOURNAL_MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let readout = read_journal(&path).unwrap();
        assert!(readout.records.is_empty());
        assert!(readout.damage.unwrap().contains("exceeds cap"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
