//! `lotus-serve`: the graph query service of the LOTUS workspace.
//!
//! A dependency-free `std::net` TCP daemon that serves triangle and
//! clique queries over fully preprocessed LOTUS graphs:
//!
//! - [`proto`] — the length-prefixed binary wire protocol (magic +
//!   version + CRC32 trailer, untrusted-length hardening shared with
//!   `lotus_graph::io`).
//! - [`registry`] — the preprocessed-graph registry: load/build once,
//!   serve many times, LRU-evicted against a
//!   `lotus_resilience::MemoryBudget`.
//! - [`pool`] — the bounded worker pool behind admission control.
//! - [`server`] — the daemon itself: accept loop, connection threads,
//!   request dispatch, per-request deadlines, panic isolation.
//! - [`client`] — a minimal blocking client.
//! - [`loadgen`] — the load-generator harness measuring request
//!   latency percentiles for the BENCH `serve` section.
//!
//! The daemon speaks nine request types — `Ping`, `Stats`, `Count`,
//! `PerVertex`, `KClique`, `Batch`, and the admin `LoadGraph` /
//! `EvictGraph` / `Drain` — and always answers with a structured
//! [`proto::Response`], including typed errors for overload, expired
//! deadlines, and isolated worker panics. See DESIGN.md §11.

pub mod client;
pub(crate) mod event_loop;
pub mod journal;
pub mod loadgen;
pub(crate) mod mux;
pub mod pool;
pub mod proto;
pub mod recovery;
pub mod registry;
pub mod server;
pub mod shards;
pub mod store;
pub mod timer;

pub use client::Client;
pub use journal::{Journal, JournalRecord};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use proto::{ErrorKind, LoopStat, ProtoError, Request, Response, StatsReply};
pub use recovery::{recover, RecoveredState, RecoveryReport};
pub use registry::{GraphSpec, PreparedGraph, Registry, RegistryError};
pub use server::{spawn, ServeConfig, ServeError, ServeStats, ServerHandle, ServerState};
pub use shards::{ShardStore, StoredShard};
pub use store::{DurableStore, StoreError};
