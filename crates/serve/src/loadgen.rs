//! The load-generator harness: N connections × M requests with a
//! seeded mix, measuring per-request latency.
//!
//! `lotus loadgen` drives this against a running daemon and renders the
//! report as the BENCH-schema `serve` section (EXPERIMENTS.md). The mix
//! is deterministic per `(seed, connection index)`, so two runs against
//! equivalent daemons issue identical request streams.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lotus_resilience::RetryPolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::client::Client;
use crate::proto::{ErrorKind, Request, Response, NO_DEADLINE};

/// Registry key loadgen stores its target graph under.
pub const LOADGEN_GRAPH: &str = "loadgen";

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests: usize,
    /// Mix seed; each connection derives its own stream from it.
    pub seed: u64,
    /// Spec of the graph to load and query (see `registry::GraphSpec`).
    pub graph: String,
    /// Deadline attached to every counting request ([`NO_DEADLINE`] for
    /// none).
    pub deadline_ms: u64,
    /// Retry schedule for `Overloaded` rejections and transient connect
    /// failures. Every retried attempt's latency is still recorded and
    /// retries are counted separately, so percentiles stay honest.
    pub retry: RetryPolicy,
    /// In-flight requests per connection (pipelining depth). `1`
    /// reproduces the legacy request/response lockstep.
    pub pipeline: usize,
    /// Use the legacy thread-per-connection driver instead of the
    /// multiplexed event-loop client (escape hatch; caps out around a
    /// few hundred connections).
    pub legacy_threads: bool,
    /// The target is a cluster coordinator: swap the k-clique slice of
    /// the mix for queries the coordinator can fan out (cluster mode
    /// rejects `KClique`, see DESIGN.md §16).
    pub cluster: bool,
}

impl LoadgenConfig {
    /// The fixed `ci` suite: small enough for a smoke job, large enough
    /// to exercise batching, caching, and every request type.
    #[must_use]
    pub fn ci_suite(addr: &str) -> LoadgenConfig {
        LoadgenConfig {
            addr: addr.to_string(),
            connections: 4,
            requests: 50,
            seed: 42,
            graph: "rmat:9:8:7".to_string(),
            deadline_ms: NO_DEADLINE,
            retry: RetryPolicy::serve_default(42),
            pipeline: 1,
            legacy_threads: false,
            cluster: false,
        }
    }
}

/// Aggregated measurements of one loadgen run.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Connections driven.
    pub connections: usize,
    /// Requests issued in total.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// `Overloaded` rejections.
    pub overloaded: u64,
    /// `DeadlineExpired` responses.
    pub deadline_expired: u64,
    /// Any other error response.
    pub errors: u64,
    /// Retried attempts (overload backoff / reconnects) — *not* counted
    /// in `sent`, but their latencies are in `latencies_us`.
    pub retries: u64,
    /// Per-attempt latencies in microseconds, sorted ascending (retried
    /// attempts included).
    pub latencies_us: Vec<u64>,
    /// Wall time of the whole run in milliseconds.
    pub wall_ms: u64,
    /// Peak concurrently open connections during the run.
    pub open_conns: u64,
    /// Best completion rate sustained over any 1 s sliding window
    /// (equals the overall rate for sub-second runs; `0.0` when the
    /// legacy driver, which does not timestamp completions, ran).
    pub max_sustained_rps: f64,
}

impl LoadgenReport {
    /// The `p`-th latency percentile in microseconds (0 when empty).
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        // Nearest-rank: the smallest latency ≥ p percent of the sample.
        let rank = (p / 100.0 * self.latencies_us.len() as f64).ceil() as usize;
        self.latencies_us[rank.saturating_sub(1).min(self.latencies_us.len() - 1)]
    }

    /// Requests per second over the whole run.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        self.sent as f64 / (self.wall_ms as f64 / 1e3)
    }
}

/// Runs the load generator to completion.
///
/// # Errors
/// Returns a human-readable message when the daemon is unreachable or
/// the warm-up `LoadGraph` is refused; individual request failures are
/// *measurements* (counted in the report), not errors.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    // Warm the registry so the measured stream hits a resident graph.
    // A daemon mid-restart answers after a short backoff instead of
    // failing the whole run.
    let (mut admin, _retries) = Client::connect_with_retry(config.addr.as_str(), &config.retry)
        .map_err(|e| format!("connecting to {}: {e}", config.addr))?;
    let loaded = admin
        .call(&Request::LoadGraph {
            name: LOADGEN_GRAPH.to_string(),
            spec: config.graph.clone(),
        })
        .map_err(|e| format!("loading `{}`: {e}", config.graph))?;
    let vertices = match loaded {
        Response::Loaded { vertices, .. } => vertices,
        Response::Error { kind, message } => {
            return Err(format!(
                "daemon refused `{}`: {} ({message})",
                config.graph,
                kind.name()
            ))
        }
        other => return Err(format!("unexpected reply to LoadGraph: {other:?}")),
    };

    if !config.legacy_threads {
        return crate::mux::run(config, vertices);
    }

    let config = Arc::new(config.clone());
    let start = Instant::now();
    let mut threads = Vec::new();
    for conn in 0..config.connections {
        let config = Arc::clone(&config);
        threads.push(std::thread::spawn(move || {
            drive_connection(&config, conn as u64, vertices)
        }));
    }
    let mut report = LoadgenReport {
        connections: config.connections,
        // Every legacy connection is open for the whole run.
        open_conns: config.connections as u64,
        ..LoadgenReport::default()
    };
    let mut connect_failures = Vec::new();
    for thread in threads {
        match thread.join() {
            Ok(Ok(partial)) => {
                report.sent += partial.sent;
                report.ok += partial.ok;
                report.overloaded += partial.overloaded;
                report.deadline_expired += partial.deadline_expired;
                report.errors += partial.errors;
                report.retries += partial.retries;
                report.latencies_us.extend(partial.latencies_us);
            }
            Ok(Err(msg)) => connect_failures.push(msg),
            Err(_) => connect_failures.push("loadgen thread panicked".to_string()),
        }
    }
    report.wall_ms = start.elapsed().as_millis() as u64;
    if !connect_failures.is_empty() && report.sent == 0 {
        return Err(connect_failures.remove(0));
    }
    report.errors += connect_failures.len() as u64;
    report.latencies_us.sort_unstable();
    Ok(report)
}

fn drive_connection(
    config: &LoadgenConfig,
    index: u64,
    vertices: u32,
) -> Result<LoadgenReport, String> {
    // Each connection derives its own jitter seed so backoff delays
    // stay deterministic per (seed, connection) yet decorrelated.
    let retry = RetryPolicy {
        seed: config.retry.seed.wrapping_add(index),
        ..config.retry
    };
    let (mut client, connect_retries) = Client::connect_with_retry(config.addr.as_str(), &retry)
        .map_err(|e| format!("connection {index}: {e}"))?;
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("connection {index}: {e}"))?;
    let mut rng = SmallRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index),
    );
    let mut report = LoadgenReport {
        retries: u64::from(connect_retries),
        ..LoadgenReport::default()
    };
    for _ in 0..config.requests {
        let request = pick_request(&mut rng, config, vertices);
        // Overload backoff loop: every attempt's latency is measured
        // (so p99 reflects what a caller actually waited through), each
        // retry is counted separately, and the request's final outcome
        // is classified exactly once below.
        let mut attempt = 0u32;
        let response = loop {
            attempt += 1;
            let sent_at = Instant::now();
            match client.call(&request) {
                Ok(response) => {
                    report
                        .latencies_us
                        .push(sent_at.elapsed().as_micros() as u64);
                    let overloaded = matches!(
                        response,
                        Response::Error {
                            kind: ErrorKind::Overloaded,
                            ..
                        }
                    );
                    if overloaded && retry.should_retry(attempt) {
                        report.retries += 1;
                        std::thread::sleep(retry.delay_for(attempt));
                        continue;
                    }
                    break response;
                }
                Err(e) => {
                    // Transport damage mid-run: count it and stop this
                    // connection; the others keep measuring.
                    report.errors += 1;
                    report.sent += 1;
                    return if report.sent > 1 {
                        Ok(report)
                    } else {
                        Err(format!("connection {index}: {e}"))
                    };
                }
            }
        };
        report.sent += 1;
        match response {
            Response::Error { kind, .. } => match kind {
                ErrorKind::Overloaded => report.overloaded += 1,
                ErrorKind::DeadlineExpired => report.deadline_expired += 1,
                _ => report.errors += 1,
            },
            _ => report.ok += 1,
        }
    }
    Ok(report)
}

/// The seeded request mix: mostly counts, a slice of per-vertex and
/// clique queries, a sprinkle of pings and stats, and the occasional
/// two-element batch. Shared with the multiplexed driver so both issue
/// identical streams.
pub(crate) fn pick_request(rng: &mut SmallRng, config: &LoadgenConfig, vertices: u32) -> Request {
    let name = LOADGEN_GRAPH.to_string();
    let roll = rng.gen_range(0..100u32);
    if roll < 60 {
        Request::Count {
            name,
            deadline_ms: config.deadline_ms,
        }
    } else if roll < 75 {
        let start = rng.gen_range(0..vertices.max(1));
        Request::PerVertex {
            name,
            start,
            end: start.saturating_add(64).min(vertices),
            deadline_ms: config.deadline_ms,
        }
    } else if roll < 85 {
        // Cluster mode cannot fan k-clique out (per-shard sums would
        // be inexact); substitute a count. `k` is drawn either way so
        // one seed yields the same downstream schedule in both modes.
        let k = rng.gen_range(3..5u32);
        if config.cluster {
            Request::Count {
                name,
                deadline_ms: config.deadline_ms,
            }
        } else {
            Request::KClique {
                name,
                k,
                deadline_ms: config.deadline_ms,
            }
        }
    } else if roll < 92 {
        let second = if config.cluster {
            Request::Ping
        } else {
            Request::KClique {
                name: name.clone(),
                k: 3,
                deadline_ms: config.deadline_ms,
            }
        };
        Request::Batch(vec![
            Request::Count {
                name,
                deadline_ms: config.deadline_ms,
            },
            second,
        ])
    } else if roll < 96 {
        Request::Stats
    } else {
        Request::Ping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_sorted_latencies() {
        let report = LoadgenReport {
            latencies_us: (1..=100).collect(),
            sent: 100,
            wall_ms: 2000,
            ..LoadgenReport::default()
        };
        assert_eq!(report.percentile_us(50.0), 50);
        assert_eq!(report.percentile_us(99.0), 99);
        assert_eq!(report.percentile_us(0.0), 1);
        assert_eq!(report.percentile_us(100.0), 100);
        assert!((report.throughput_rps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = LoadgenReport::default();
        assert_eq!(report.percentile_us(99.0), 0);
        assert!(report.throughput_rps().abs() < 1e-9);
    }

    #[test]
    fn mix_is_deterministic_per_seed() {
        let config = LoadgenConfig::ci_suite("127.0.0.1:1");
        let stream = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32)
                .map(|_| pick_request(&mut rng, &config, 512))
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn ci_suite_shape() {
        let config = LoadgenConfig::ci_suite("x:1");
        assert_eq!(config.connections, 4);
        assert_eq!(config.requests, 50);
        assert_eq!(config.graph, "rmat:9:8:7");
        assert_eq!(config.deadline_ms, NO_DEADLINE);
    }
}
