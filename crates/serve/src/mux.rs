//! The multiplexed load-generator driver: thousands of client
//! connections on one thread, over the same `lotus_net` readiness shim
//! the daemon uses.
//!
//! The legacy driver spawned one OS thread per connection, which capped
//! `loadgen` at a few hundred connections — useless for proving the
//! event-loop daemon scales. Here every connection is a small state
//! machine (seeded request mix → pipelined in-flight window → in-order
//! response matching → backoff-scheduled retries) multiplexed over one
//! [`Poller`], so a single loadgen process drives ≥1024 connections
//! with request pipelining.
//!
//! Fidelity to the legacy driver is deliberate: the per-connection
//! request stream is bit-for-bit identical (same `(seed, index)` RNG
//! derivation, same `pick_request` call order — the mix is picked
//! lazily per connection, so interleaving cannot perturb it), and
//! retry accounting follows the same rules: every attempt's latency is
//! recorded, retried attempts are counted in `retries` but not `sent`,
//! and each logical request is classified exactly once.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use lotus_net::{Events, Interest, Poller, Token};
use lotus_resilience::RetryPolicy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::loadgen::{pick_request, LoadgenConfig, LoadgenReport};
use crate::proto::{try_parse_frame, write_request, ErrorKind, FrameProgress, Response};

/// A connection with requests outstanding but no response bytes for
/// this long fails the run — a hung daemon must not hang CI.
const STALL_TIMEOUT: Duration = Duration::from_secs(60);

/// Upper bound on one poller wait, so parked retries and stall checks
/// run even when no socket turns ready.
const MAX_WAIT: Duration = Duration::from_millis(100);

/// One in-flight attempt of a logical request.
struct Flight {
    request: crate::proto::Request,
    attempt: u32,
    sent_at: Instant,
}

/// A retried attempt parked until its backoff delay elapses.
struct ParkedRetry {
    due: Instant,
    conn: usize,
    flight: Flight,
}

/// One multiplexed client connection.
struct MuxConn {
    stream: TcpStream,
    rng: SmallRng,
    retry: RetryPolicy,
    read_buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    /// Attempts on the wire, in send order. The daemon answers frames
    /// in order, so the front entry always owns the next response.
    outstanding: VecDeque<Flight>,
    /// Logical requests picked so far. The mix is derived per
    /// connection, so pipelining cannot perturb the stream.
    issued: usize,
    /// Logical requests with a final outcome.
    completed: usize,
    /// Attempts parked for backoff (they still occupy a window slot,
    /// otherwise a retry storm would exceed the pipeline depth).
    parked: usize,
    last_rx: Instant,
    interest: Interest,
    registered: bool,
    dead: bool,
}

impl MuxConn {
    /// Still has work to issue or answers to collect.
    fn finished(&self, requests: usize) -> bool {
        self.dead || (self.completed >= requests && self.outstanding.is_empty())
    }

    fn window_free(&self, pipeline: usize, requests: usize) -> bool {
        self.issued < requests && self.outstanding.len() + self.parked < pipeline
    }
}

/// Drives the full run over one poller on the calling thread.
///
/// # Errors
/// Returns a message when no connection can be established or the run
/// produces no measurements; individual request failures are
/// *measurements* (counted in the report), not errors.
pub(crate) fn run(config: &LoadgenConfig, vertices: u32) -> Result<LoadgenReport, String> {
    let pipeline = config.pipeline.max(1);
    let poller = Poller::new().map_err(|e| format!("opening poller: {e}"))?;
    let mut report = LoadgenReport {
        connections: config.connections,
        ..LoadgenReport::default()
    };

    // Connect sequentially and blocking: a burst of nonblocking
    // connects overflows the listener's SYN backlog, which shows up as
    // spurious resets under exactly the load this tool measures.
    let mut conns: Vec<MuxConn> = Vec::with_capacity(config.connections);
    let mut connect_failure: Option<String> = None;
    let mut connect_failures = 0u64;
    for index in 0..config.connections {
        let retry = RetryPolicy {
            seed: config.retry.seed.wrapping_add(index as u64),
            ..config.retry
        };
        match connect_with_retry(&config.addr, &retry, &mut report.retries) {
            Ok(stream) => {
                let token = conns.len() as u64;
                let conn = MuxConn {
                    stream,
                    rng: SmallRng::seed_from_u64(
                        config
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add(index as u64),
                    ),
                    retry,
                    read_buf: Vec::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    outstanding: VecDeque::new(),
                    issued: 0,
                    completed: 0,
                    parked: 0,
                    last_rx: Instant::now(),
                    interest: Interest::READ,
                    registered: true,
                    dead: false,
                };
                poller
                    .register(conn.stream.as_raw_fd(), Token(token), conn.interest)
                    .map_err(|e| format!("registering connection {index}: {e}"))?;
                conns.push(conn);
            }
            Err(e) => {
                connect_failures += 1;
                connect_failure.get_or_insert(format!("connection {index}: {e}"));
            }
        }
    }
    if conns.is_empty() {
        return Err(
            connect_failure.unwrap_or_else(|| "no connection could be established".to_string())
        );
    }
    report.errors += connect_failures;
    report.open_conns = conns.len() as u64;

    let start = Instant::now();
    let mut completions_us: Vec<u64> = Vec::new();
    let mut parked: Vec<ParkedRetry> = Vec::new();
    let mut events = Events::with_capacity(1024);

    loop {
        // Fill every free pipeline slot, flush, and settle interest.
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead || conn.completed >= config.requests {
                continue;
            }
            while conn.window_free(pipeline, config.requests) {
                let request = pick_request(&mut conn.rng, config, vertices);
                conn.issued += 1;
                send_attempt(
                    conn,
                    Flight {
                        request,
                        attempt: 0,
                        sent_at: Instant::now(),
                    },
                );
            }
            flush_out(conn);
            refresh(&poller, i, conn);
        }

        if parked.is_empty() && conns.iter().all(|c| c.finished(config.requests)) {
            break;
        }

        // Wait for readiness, bounded by the nearest parked retry.
        let now = Instant::now();
        let timeout = parked
            .iter()
            .map(|p| p.due.saturating_duration_since(now))
            .min()
            .unwrap_or(MAX_WAIT)
            .clamp(Duration::from_millis(1), MAX_WAIT);
        let _ = poller.wait(&mut events, Some(timeout));

        for event in &events {
            let idx = event.token.0 as usize;
            let Some(conn) = conns.get_mut(idx) else {
                continue;
            };
            if conn.dead {
                continue;
            }
            if event.writable {
                flush_out(conn);
            }
            if event.readable || event.closed {
                pump_responses(
                    conn,
                    config,
                    &mut report,
                    &mut parked,
                    idx,
                    start,
                    &mut completions_us,
                );
            }
            refresh(&poller, idx, conn);
        }

        // Re-send parked retries whose backoff has elapsed.
        let now = Instant::now();
        let mut i = 0;
        while i < parked.len() {
            if parked[i].due <= now {
                let entry = parked.swap_remove(i);
                let conn = &mut conns[entry.conn];
                conn.parked -= 1;
                if !conn.dead {
                    send_attempt(
                        conn,
                        Flight {
                            sent_at: Instant::now(),
                            ..entry.flight
                        },
                    );
                    flush_out(conn);
                    refresh(&poller, entry.conn, conn);
                }
            } else {
                i += 1;
            }
        }

        // Stall detection: outstanding work but no response bytes.
        for conn in conns.iter_mut().filter(|c| !c.dead) {
            if !conn.outstanding.is_empty()
                && now.saturating_duration_since(conn.last_rx) > STALL_TIMEOUT
            {
                fail_connection(conn, &mut report);
            }
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            if conn.dead {
                refresh(&poller, i, conn);
            }
        }
    }

    report.wall_ms = start.elapsed().as_millis() as u64;
    report.latencies_us.sort_unstable();
    report.max_sustained_rps = max_sustained_rps(&mut completions_us, report.wall_ms);
    if report.sent == 0 {
        return Err("run produced no measurements (all connections failed)".to_string());
    }
    Ok(report)
}

/// Blocking connect honouring the retry schedule, mirroring
/// `Client::connect_with_retry` (each retried connect counts into the
/// report like the legacy driver's `connect_retries`).
fn connect_with_retry(
    addr: &str,
    retry: &RetryPolicy,
    retries: &mut u64,
) -> Result<TcpStream, String> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream
                    .set_nonblocking(true)
                    .map_err(|e| format!("set_nonblocking: {e}"))?;
                return Ok(stream);
            }
            Err(e) => {
                if !retry.should_retry(attempt) {
                    return Err(format!("connecting to {addr}: {e}"));
                }
                *retries += 1;
                std::thread::sleep(retry.delay_for(attempt));
            }
        }
    }
}

/// Encodes one attempt onto the connection's write buffer and tracks
/// it at the back of the outstanding window.
fn send_attempt(conn: &mut MuxConn, flight: Flight) {
    if write_request(&mut conn.out, &flight.request).is_err() {
        // Unreachable for the generated mix; dropping the attempt is
        // safer than desynchronizing the response window.
        return;
    }
    conn.outstanding.push_back(flight);
}

/// Reads everything available, matches responses front-to-back, and
/// classifies outcomes / schedules overload retries.
fn pump_responses(
    conn: &mut MuxConn,
    config: &LoadgenConfig,
    report: &mut LoadgenReport,
    parked: &mut Vec<ParkedRetry>,
    conn_idx: usize,
    start: Instant,
    completions_us: &mut Vec<u64>,
) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF: only an error if the daemon still owed answers.
                if !conn.outstanding.is_empty() || conn.completed < config.requests {
                    fail_connection(conn, report);
                } else {
                    conn.dead = true;
                }
                break;
            }
            Ok(n) => {
                conn.last_rx = Instant::now();
                conn.read_buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                fail_connection(conn, report);
                return;
            }
        }
    }
    loop {
        match try_parse_frame(&conn.read_buf) {
            FrameProgress::Incomplete => break,
            FrameProgress::Damaged(_) => {
                fail_connection(conn, report);
                return;
            }
            FrameProgress::Frame { payload, consumed } => {
                conn.read_buf.drain(..consumed);
                let Ok(response) = Response::decode(&payload) else {
                    fail_connection(conn, report);
                    return;
                };
                let Some(flight) = conn.outstanding.pop_front() else {
                    // A response nobody asked for: protocol violation.
                    fail_connection(conn, report);
                    return;
                };
                report
                    .latencies_us
                    .push(flight.sent_at.elapsed().as_micros() as u64);
                let overloaded = matches!(
                    &response,
                    Response::Error {
                        kind: ErrorKind::Overloaded,
                        ..
                    }
                );
                let attempt = flight.attempt + 1;
                if overloaded && conn.retry.should_retry(attempt) {
                    report.retries += 1;
                    conn.parked += 1;
                    parked.push(ParkedRetry {
                        due: Instant::now() + conn.retry.delay_for(attempt),
                        conn: conn_idx,
                        flight: Flight { attempt, ..flight },
                    });
                    continue;
                }
                conn.completed += 1;
                report.sent += 1;
                completions_us.push(start.elapsed().as_micros() as u64);
                match response {
                    Response::Error { kind, .. } => match kind {
                        ErrorKind::Overloaded => report.overloaded += 1,
                        ErrorKind::DeadlineExpired => report.deadline_expired += 1,
                        _ => report.errors += 1,
                    },
                    _ => report.ok += 1,
                }
            }
        }
    }
}

/// Transport or protocol damage mid-run: mirror the legacy accounting
/// (one error, one sent) and stop driving this connection; the others
/// keep measuring.
fn fail_connection(conn: &mut MuxConn, report: &mut LoadgenReport) {
    report.errors += 1;
    report.sent += 1;
    conn.dead = true;
    conn.outstanding.clear();
}

/// Writes as much buffered request data as the socket accepts.
fn flush_out(conn: &mut MuxConn) {
    if conn.dead {
        return;
    }
    while conn.out_pos < conn.out.len() {
        match (&conn.stream).write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}

/// Keeps write interest registered only while bytes are queued, and
/// drops dead connections out of the poller.
fn refresh(poller: &Poller, idx: usize, conn: &mut MuxConn) {
    if conn.dead {
        if conn.registered {
            let _ = poller.deregister(conn.stream.as_raw_fd());
            conn.registered = false;
        }
        return;
    }
    let want = Interest {
        readable: true,
        writable: conn.out_pos < conn.out.len(),
    };
    if want != conn.interest {
        if poller
            .reregister(conn.stream.as_raw_fd(), Token(idx as u64), want)
            .is_err()
        {
            conn.dead = true;
            return;
        }
        conn.interest = want;
    }
}

/// Best completion rate over any 1 s sliding window (two pointers over
/// the sorted completion timestamps). Runs shorter than the window
/// fall back to the overall rate.
fn max_sustained_rps(completions_us: &mut [u64], wall_ms: u64) -> f64 {
    if completions_us.is_empty() {
        return 0.0;
    }
    completions_us.sort_unstable();
    if wall_ms < 1000 {
        return completions_us.len() as f64 / (wall_ms.max(1) as f64 / 1e3);
    }
    let mut best = 0usize;
    let mut lo = 0usize;
    for hi in 0..completions_us.len() {
        while completions_us[hi] - completions_us[lo] > 1_000_000 {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_rps_finds_the_densest_window() {
        // 10 completions in the first second, 100 in the third.
        let mut times: Vec<u64> = (0..10u64).map(|i| i * 100_000).collect();
        times.extend((0..100u64).map(|i| 2_000_000 + i * 10_000));
        assert!((max_sustained_rps(&mut times, 3000) - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn short_runs_fall_back_to_overall_rate() {
        let mut times = vec![0, 100, 200, 300];
        let rps = max_sustained_rps(&mut times, 500);
        assert!((rps - 8.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_run_is_zero() {
        assert!(max_sustained_rps(&mut Vec::new(), 0).abs() < f64::EPSILON);
    }
}
