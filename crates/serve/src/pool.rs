//! A bounded worker pool with admission control.
//!
//! The daemon's connection threads never execute counting work; they
//! submit jobs here. The queue is *bounded*: when it is full,
//! [`WorkerPool::try_submit`] refuses immediately so the caller can send
//! an explicit `Overloaded` response instead of letting requests pile up
//! behind an unbounded backlog. Workers wrap every job in
//! `lotus_resilience::isolate`, so a panicking job can never take a
//! worker thread (or the daemon) down with it.
//!
//! `shims/par`'s `ThreadPool` executes sequentially by design, so the
//! pool spawns real `std::thread` workers; its default width still comes
//! from `rayon::current_num_threads()` so the serving layer sizes itself
//! the same way the counting kernels do.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;

use lotus_resilience::isolate;
use lotus_telemetry::sync::{TracedCondvar, TracedMutex};

/// A unit of work: always runs to completion or panics (isolated);
/// responsible for delivering its own reply.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: TracedMutex<VecDeque<Job>>,
    wake: TracedCondvar,
    capacity: usize,
    /// Set once by [`WorkerPool::shutdown`]; workers drain the queue and
    /// exit.
    shutting_down: TracedMutex<bool>,
    panics: AtomicU64,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        *self
            .shutting_down
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Fixed-width pool of worker threads with a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: TracedMutex<Vec<JoinHandle<()>>>,
    width: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads behind a queue of `capacity` slots.
    /// Zero values are clamped to one.
    ///
    /// # Errors
    /// Returns the OS error when a worker thread cannot be spawned;
    /// already-spawned workers are shut down before returning.
    pub fn new(workers: usize, capacity: usize) -> std::io::Result<WorkerPool> {
        let width = workers.max(1);
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            queue: TracedMutex::new("serve.pool.queue", VecDeque::with_capacity(capacity)),
            wake: TracedCondvar::new("serve.pool.wake"),
            capacity,
            shutting_down: TracedMutex::new("serve.pool.shutting_down", false),
            panics: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(width);
        for i in 0..width {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("lotus-serve-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    let partial = WorkerPool {
                        shared,
                        workers: TracedMutex::new("serve.pool.workers", handles),
                        width: i,
                    };
                    partial.shutdown();
                    return Err(e);
                }
            }
        }
        Ok(WorkerPool {
            shared,
            workers: TracedMutex::new("serve.pool.workers", handles),
            width,
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.width
    }

    /// Capacity of the bounded queue.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Worker panics confined so far.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Admission control: enqueues the job unless the queue is full or
    /// the pool is shutting down. Returns `false` (and drops the job)
    /// when refused — the caller replies `Overloaded`/`ShuttingDown`
    /// instead of blocking.
    pub fn try_submit(&self, job: Job) -> bool {
        if self.shared.is_shutting_down() {
            return false;
        }
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if queue.len() >= self.shared.capacity {
                return false;
            }
            queue.push_back(job);
        }
        self.shared.wake.notify_one();
        true
    }

    /// Jobs waiting in the queue right now.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Drains the queue: refuses new submissions, lets workers finish
    /// every queued job, then joins them. Idempotent; must not be called
    /// from a worker thread (it would join itself).
    pub fn shutdown(&self) {
        {
            let mut flag = self
                .shared
                .shutting_down
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if *flag {
                return;
            }
            *flag = true;
        }
        self.shared.wake.notify_all();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // A panicking worker already recorded itself via `isolate`;
            // the join error carries nothing further.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("capacity", &self.capacity())
            .field("queued", &self.queued())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                queue = shared
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        // Backstop isolation: jobs reply for themselves (including their
        // own panic handling), but if one unwinds anyway the worker
        // thread survives it.
        if isolate(job).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8).expect("pool");
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            assert!(pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })));
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn full_queue_refuses_admission() {
        let pool = WorkerPool::new(1, 2).expect("pool");
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker so queued jobs cannot drain.
        assert!(pool.try_submit(Box::new(move || {
            let _ = block_rx.recv();
        })));
        // Wait for the worker to pick the blocker up so both queue
        // slots are genuinely free for the next two submissions.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        assert!(pool.try_submit(Box::new(|| ())));
        assert!(pool.try_submit(Box::new(|| ())));
        // Queue now holds 2 jobs == capacity: refuse.
        assert!(!pool.try_submit(Box::new(|| ())));
        block_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1, 4).expect("pool");
        assert!(pool.try_submit(Box::new(|| panic!("job boom"))));
        let (tx, rx) = mpsc::channel();
        assert!(pool.try_submit(Box::new(move || {
            tx.send(42).unwrap();
        })));
        assert_eq!(rx.recv().unwrap(), 42);
        pool.shutdown();
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let pool = WorkerPool::new(1, 16).expect("pool");
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let ran = Arc::clone(&ran);
            assert!(pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })));
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        assert!(!pool.try_submit(Box::new(|| ())));
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn zero_sizes_are_clamped() {
        let pool = WorkerPool::new(0, 0).expect("pool");
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.capacity(), 1);
    }
}
