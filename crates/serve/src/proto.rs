//! The `lotus-serve` wire protocol: length-prefixed binary frames.
//!
//! Every message (request or response) travels in one frame:
//!
//! ```text
//! magic  "LSRV"          4 bytes
//! version u32            4 bytes   (currently 1)
//! payload_len u32        4 bytes   (bytes of payload, ≤ MAX_FRAME_PAYLOAD)
//! payload                payload_len bytes
//! crc32 u32              4 bytes   (over everything above)
//! ```
//!
//! The framing reuses the v2 discipline of `lotus_graph::io`: a magic +
//! version prefix, a CRC32 trailer over the whole frame, and *untrusted*
//! header fields — a declared payload length is validated against
//! [`MAX_FRAME_PAYLOAD`] before any allocation, and buffer reservations
//! are additionally capped at `lotus_graph::io::MAX_PREALLOC_BYTES`, so a
//! hostile 4 GiB length costs a typed error, not an allocation.
//!
//! Payloads are a one-byte tag followed by little-endian fields; strings
//! are a u16 length plus UTF-8 bytes. Deadlines travel as milliseconds
//! with [`NO_DEADLINE`] meaning "none" (so an explicit `0` is an
//! *already-expired* deadline — useful for admission-control tests).

use std::io::{Read, Write};

use lotus_graph::crc32::Crc32;
use lotus_graph::io::MAX_PREALLOC_BYTES;
use lotus_telemetry::json::Json;

/// Frame magic, distinct from the `.lotg` file magic.
pub const MAGIC: &[u8; 4] = b"LSRV";
/// Current protocol version.
pub const VERSION: u32 = 1;
/// Hard cap on a frame's declared payload length. Larger declarations
/// are rejected before any allocation happens.
pub const MAX_FRAME_PAYLOAD: u32 = 4 << 20;
/// Sentinel for "no deadline" in the wire encoding of deadlines.
pub const NO_DEADLINE: u64 = u64::MAX;
/// Largest per-vertex slice a single request may ask for (bounds the
/// response frame size: 64 Ki counts × 8 bytes = 512 KiB).
pub const MAX_PER_VERTEX_SPAN: u32 = 1 << 16;
/// Largest clique size `KClique` accepts.
pub const MAX_CLIQUE_K: u32 = 8;
/// Largest number of sub-requests in one `Batch`.
pub const MAX_BATCH: usize = 256;

/// A protocol-level failure while reading or decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes EOF between frames).
    Io(std::io::Error),
    /// Stream did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u32),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// Connection closed mid-frame.
    Truncated,
    /// CRC32 trailer mismatch.
    BadCrc {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// Payload bytes do not decode as a valid message.
    Malformed(String),
    /// First payload byte is not a known message tag.
    UnknownTag(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversized(len) => write!(
                f,
                "declared payload length {len} exceeds cap {MAX_FRAME_PAYLOAD}"
            ),
            ProtoError::Truncated => write!(f, "connection closed mid-frame"),
            ProtoError::BadCrc { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
            ProtoError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Why a request failed, as carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Frame-level problem (bad magic/version/length/CRC).
    Protocol,
    /// Well-framed but semantically invalid request.
    BadRequest,
    /// Named graph is not resident and the name is not a buildable spec.
    NotFound,
    /// Bounded request queue was full; retry later.
    Overloaded,
    /// The request's deadline expired before or during execution.
    DeadlineExpired,
    /// The request was cancelled.
    Cancelled,
    /// A worker panicked executing the request (isolated; daemon lives).
    WorkerPanic,
    /// The daemon is draining and no longer accepts work.
    ShuttingDown,
    /// The request succeeded in memory but its durability step
    /// (snapshot or journal) failed — the result is not crash-safe.
    DurabilityFailed,
    /// A cluster fan-out could not reach (or timed out waiting for) a
    /// shard daemon, so the exact merged answer cannot be produced.
    ShardUnavailable,
}

impl ErrorKind {
    const ALL: [ErrorKind; 10] = [
        ErrorKind::Protocol,
        ErrorKind::BadRequest,
        ErrorKind::NotFound,
        ErrorKind::Overloaded,
        ErrorKind::DeadlineExpired,
        ErrorKind::Cancelled,
        ErrorKind::WorkerPanic,
        ErrorKind::ShuttingDown,
        ErrorKind::DurabilityFailed,
        ErrorKind::ShardUnavailable,
    ];

    /// Stable snake_case name (the `"error"` field of the JSON form).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExpired => "deadline_expired",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::WorkerPanic => "worker_panic",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::DurabilityFailed => "durability_failed",
            ErrorKind::ShardUnavailable => "shard_unavailable",
        }
    }

    fn tag(self) -> u8 {
        // Declaration order is the wire tag.
        ErrorKind::ALL.iter().position(|k| *k == self).unwrap_or(0) as u8
    }

    fn from_tag(t: u8) -> Result<ErrorKind, ProtoError> {
        ErrorKind::ALL
            .get(t as usize)
            .copied()
            .ok_or(ProtoError::Malformed(format!("unknown error kind {t}")))
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server / registry statistics.
    Stats,
    /// Total triangle count of a resident (or spec-buildable) graph.
    Count {
        /// Registry key: a loaded name or a buildable spec.
        name: String,
        /// Milliseconds until the deadline; [`NO_DEADLINE`] for none.
        deadline_ms: u64,
    },
    /// Per-vertex triangle counts over `[start, end)` (original IDs).
    /// `start == end == 0` means the whole graph (still capped at
    /// [`MAX_PER_VERTEX_SPAN`]).
    PerVertex {
        /// Registry key.
        name: String,
        /// First vertex of the slice.
        start: u32,
        /// One past the last vertex of the slice.
        end: u32,
        /// Milliseconds until the deadline; [`NO_DEADLINE`] for none.
        deadline_ms: u64,
    },
    /// k-clique count (`1 ≤ k ≤` [`MAX_CLIQUE_K`]).
    KClique {
        /// Registry key.
        name: String,
        /// Clique size.
        k: u32,
        /// Milliseconds until the deadline; [`NO_DEADLINE`] for none.
        deadline_ms: u64,
    },
    /// Admin: build/load a graph into the registry under `name`.
    LoadGraph {
        /// Registry key to store under.
        name: String,
        /// Graph source spec (see `registry::GraphSpec`).
        spec: String,
    },
    /// Admin: drop a graph from the registry.
    EvictGraph {
        /// Registry key to drop.
        name: String,
    },
    /// Admin: finish in-flight work, then shut the daemon down.
    Drain,
    /// Several non-admin requests executed as one worker-pool job (one
    /// queue slot, one span) — the batching path.
    Batch(Vec<Request>),
    /// Cluster: build the graph from `spec`, extract the edge-balanced
    /// partition `index` of `parts` as a shard subgraph (owned forward
    /// columns plus ghost columns), and store it under `name`. The full
    /// graph is built transiently from the deterministic spec; only the
    /// subgraph stays resident.
    ShardLoad {
        /// Shard-store key.
        name: String,
        /// Deterministic graph spec (see `registry::GraphSpec`).
        spec: String,
        /// Total shards the graph is split across.
        parts: u32,
        /// This shard's partition index (`0 ≤ index < parts`).
        index: u32,
    },
    /// Cluster: count the triangles owned by the shard subgraph `name`
    /// (apex-restricted — exact when summed across all shards).
    ShardCount {
        /// Shard-store key.
        name: String,
        /// Milliseconds until the deadline; [`NO_DEADLINE`] for none.
        deadline_ms: u64,
    },
    /// Cluster: this shard's contribution to per-vertex counts over the
    /// window `[start, end)`; element-wise sums across shards are exact.
    ShardPerVertex {
        /// Shard-store key.
        name: String,
        /// First vertex of the window.
        start: u32,
        /// One past the last vertex of the window.
        end: u32,
        /// Milliseconds until the deadline; [`NO_DEADLINE`] for none.
        deadline_ms: u64,
    },
    /// Cluster: a shard daemon announces itself to the coordinator.
    ShardJoin {
        /// Address (`host:port`) the coordinator should dial back.
        addr: String,
    },
    /// Cluster: health/occupancy probe answered by a shard daemon.
    ShardStat,
}

/// Server/registry statistics carried by [`Response::Stats`]. These are
/// the always-on serving counters; armed `telemetry` builds mirror them
/// into `lotus_telemetry::counters` as well.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Graphs resident in the registry.
    pub graphs: u32,
    /// Bytes charged against the registry's memory budget.
    pub resident_bytes: u64,
    /// The registry's byte budget.
    pub budget_bytes: u64,
    /// Requests answered successfully.
    pub requests_served: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests that expired their deadline.
    pub deadline_expired: u64,
    /// Registry lookups served from cache.
    pub cache_hits: u64,
    /// Registry lookups that had to build/load.
    pub cache_misses: u64,
    /// Worker panics confined by isolation.
    pub panics: u64,
    /// Worker threads in the pool.
    pub workers: u32,
    /// Capacity of the bounded request queue.
    pub queue_capacity: u32,
    /// Graph snapshots durably written (0 without a data dir).
    pub snapshot_writes: u64,
    /// Manifest journal records appended and synced.
    pub journal_appends: u64,
    /// Journal records replayed by startup recovery.
    pub journal_replays: u64,
    /// Files quarantined by startup recovery.
    pub recovery_quarantined: u64,
    /// Milliseconds the startup recovery pass took.
    pub recovery_ms: u64,
    /// Connections accepted since startup.
    pub conns_accepted: u64,
    /// Connections open right now.
    pub conns_open: u64,
    /// Event-loop threads multiplexing connections.
    pub event_threads: u32,
    /// Per-event-loop readiness/wakeup tallies, indexed by loop thread.
    /// Lets the soak lane spot one hot loop that totals would hide.
    pub loop_stats: Vec<LoopStat>,
}

/// One event-loop thread's always-on activity counters (a row of
/// [`StatsReply::loop_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStat {
    /// Readiness events delivered to this loop by the poller.
    pub readiness_events: u64,
    /// Times this loop's `wait` returned (including waker nudges).
    pub loop_wakeups: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Stats`].
    Stats(StatsReply),
    /// Reply to [`Request::Count`].
    Count {
        /// Total triangles.
        triangles: u64,
        /// Whether the preprocessed graph came from the registry cache.
        cached: bool,
        /// Server-side execution time, microseconds.
        wall_micros: u64,
    },
    /// Reply to [`Request::PerVertex`].
    PerVertex {
        /// First vertex of the returned slice.
        start: u32,
        /// Per-vertex triangle counts for `[start, start + len)`.
        counts: Vec<u64>,
    },
    /// Reply to [`Request::KClique`].
    KClique {
        /// Clique size counted.
        k: u32,
        /// Number of k-cliques.
        cliques: u64,
    },
    /// Reply to [`Request::LoadGraph`].
    Loaded {
        /// Vertices of the loaded graph.
        vertices: u32,
        /// Undirected edges.
        edges: u64,
        /// Bytes charged against the registry budget.
        bytes: u64,
        /// Resident graphs evicted to make room.
        evicted: u32,
    },
    /// Reply to [`Request::EvictGraph`].
    Evicted {
        /// Whether the name was resident.
        existed: bool,
    },
    /// Reply to [`Request::Drain`]: the daemon finishes in-flight work
    /// and exits.
    Draining,
    /// Reply to [`Request::ShardJoin`]: the coordinator acknowledges the
    /// shard and reports the fleet size it now tracks.
    ShardJoined {
        /// Shards registered with the coordinator after this join.
        shards: u32,
    },
    /// Reply to [`Request::ShardStat`]: a shard daemon's occupancy.
    ShardStat {
        /// Shard subgraphs resident in the shard store.
        graphs: u32,
        /// Vertices owned across resident shard subgraphs.
        owned_vertices: u64,
        /// Forward entries resident (owned plus ghost columns).
        entries: u64,
        /// Entries held in ghost (non-owned) columns.
        ghost_entries: u64,
    },
    /// Reply to [`Request::Batch`]: one response per sub-request.
    Batch(Vec<Response>),
    /// A structured failure.
    Error {
        /// Failure category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for [`Response::Error`].
    #[must_use]
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// The JSON rendering printed by `lotus query`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::Obj(vec![("pong".into(), Json::Bool(true))]),
            Response::Stats(s) => Json::Obj(vec![
                ("graphs".into(), Json::Int(i64::from(s.graphs))),
                ("resident_bytes".into(), Json::Int(s.resident_bytes as i64)),
                ("budget_bytes".into(), Json::Int(s.budget_bytes as i64)),
                (
                    "requests_served".into(),
                    Json::Int(s.requests_served as i64),
                ),
                ("overloaded".into(), Json::Int(s.overloaded as i64)),
                (
                    "deadline_expired".into(),
                    Json::Int(s.deadline_expired as i64),
                ),
                ("cache_hits".into(), Json::Int(s.cache_hits as i64)),
                ("cache_misses".into(), Json::Int(s.cache_misses as i64)),
                ("panics".into(), Json::Int(s.panics as i64)),
                ("workers".into(), Json::Int(i64::from(s.workers))),
                (
                    "queue_capacity".into(),
                    Json::Int(i64::from(s.queue_capacity)),
                ),
                (
                    "snapshot_writes".into(),
                    Json::Int(s.snapshot_writes as i64),
                ),
                (
                    "journal_appends".into(),
                    Json::Int(s.journal_appends as i64),
                ),
                (
                    "journal_replays".into(),
                    Json::Int(s.journal_replays as i64),
                ),
                (
                    "recovery_quarantined".into(),
                    Json::Int(s.recovery_quarantined as i64),
                ),
                ("recovery_ms".into(), Json::Int(s.recovery_ms as i64)),
                ("conns_accepted".into(), Json::Int(s.conns_accepted as i64)),
                ("conns_open".into(), Json::Int(s.conns_open as i64)),
                (
                    "event_threads".into(),
                    Json::Int(i64::from(s.event_threads)),
                ),
                (
                    "loop_stats".into(),
                    Json::Arr(
                        s.loop_stats
                            .iter()
                            .map(|l| {
                                Json::Obj(vec![
                                    (
                                        "readiness_events".into(),
                                        Json::Int(l.readiness_events as i64),
                                    ),
                                    ("loop_wakeups".into(), Json::Int(l.loop_wakeups as i64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Count {
                triangles,
                cached,
                wall_micros,
            } => Json::Obj(vec![
                ("triangles".into(), Json::Int(*triangles as i64)),
                ("cached".into(), Json::Bool(*cached)),
                ("wall_micros".into(), Json::Int(*wall_micros as i64)),
            ]),
            Response::PerVertex { start, counts } => Json::Obj(vec![
                ("start".into(), Json::Int(i64::from(*start))),
                (
                    "counts".into(),
                    Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                ),
            ]),
            Response::KClique { k, cliques } => Json::Obj(vec![
                ("k".into(), Json::Int(i64::from(*k))),
                ("cliques".into(), Json::Int(*cliques as i64)),
            ]),
            Response::Loaded {
                vertices,
                edges,
                bytes,
                evicted,
            } => Json::Obj(vec![
                ("loaded".into(), Json::Bool(true)),
                ("vertices".into(), Json::Int(i64::from(*vertices))),
                ("edges".into(), Json::Int(*edges as i64)),
                ("bytes".into(), Json::Int(*bytes as i64)),
                ("evicted".into(), Json::Int(i64::from(*evicted))),
            ]),
            Response::Evicted { existed } => {
                Json::Obj(vec![("evicted".into(), Json::Bool(*existed))])
            }
            Response::Draining => Json::Obj(vec![("draining".into(), Json::Bool(true))]),
            Response::ShardJoined { shards } => Json::Obj(vec![
                ("joined".into(), Json::Bool(true)),
                ("shards".into(), Json::Int(i64::from(*shards))),
            ]),
            Response::ShardStat {
                graphs,
                owned_vertices,
                entries,
                ghost_entries,
            } => Json::Obj(vec![
                ("shard_graphs".into(), Json::Int(i64::from(*graphs))),
                ("owned_vertices".into(), Json::Int(*owned_vertices as i64)),
                ("entries".into(), Json::Int(*entries as i64)),
                ("ghost_entries".into(), Json::Int(*ghost_entries as i64)),
            ]),
            Response::Batch(items) => Json::Obj(vec![(
                "batch".into(),
                Json::Arr(items.iter().map(Response::to_json).collect()),
            )]),
            Response::Error { kind, message } => Json::Obj(vec![
                ("error".into(), Json::Str(kind.name().into())),
                ("message".into(), Json::Str(message.clone())),
            ]),
        }
    }
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), ProtoError> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        return Err(ProtoError::Malformed(format!(
            "string of {} bytes exceeds the u16 length prefix",
            bytes.len()
        )));
    }
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
    Ok(())
}

/// Cursor over a received payload. All reads are bounds-checked; running
/// past the end is a [`ProtoError::Malformed`].
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtoError::Malformed("payload ends early".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing byte(s) after the message",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Request {
    /// Encodes the request payload (tag + fields).
    ///
    /// # Errors
    /// Returns [`ProtoError::Malformed`] when a string field exceeds the
    /// u16 length prefix or a batch exceeds [`MAX_BATCH`].
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => buf.push(0),
            Request::Stats => buf.push(1),
            Request::Count { name, deadline_ms } => {
                buf.push(2);
                put_str(&mut buf, name)?;
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::PerVertex {
                name,
                start,
                end,
                deadline_ms,
            } => {
                buf.push(3);
                put_str(&mut buf, name)?;
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&end.to_le_bytes());
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::KClique {
                name,
                k,
                deadline_ms,
            } => {
                buf.push(4);
                put_str(&mut buf, name)?;
                buf.extend_from_slice(&k.to_le_bytes());
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::LoadGraph { name, spec } => {
                buf.push(5);
                put_str(&mut buf, name)?;
                put_str(&mut buf, spec)?;
            }
            Request::EvictGraph { name } => {
                buf.push(6);
                put_str(&mut buf, name)?;
            }
            Request::Drain => buf.push(7),
            Request::Batch(items) => {
                if items.len() > MAX_BATCH {
                    return Err(ProtoError::Malformed(format!(
                        "batch of {} exceeds the {MAX_BATCH}-request cap",
                        items.len()
                    )));
                }
                buf.push(8);
                buf.extend_from_slice(&(items.len() as u16).to_le_bytes());
                for item in items {
                    if matches!(item, Request::Batch(_)) {
                        return Err(ProtoError::Malformed("batches do not nest".into()));
                    }
                    let inner = item.encode()?;
                    buf.extend_from_slice(&(inner.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&inner);
                }
            }
            Request::ShardLoad {
                name,
                spec,
                parts,
                index,
            } => {
                buf.push(9);
                put_str(&mut buf, name)?;
                put_str(&mut buf, spec)?;
                buf.extend_from_slice(&parts.to_le_bytes());
                buf.extend_from_slice(&index.to_le_bytes());
            }
            Request::ShardCount { name, deadline_ms } => {
                buf.push(10);
                put_str(&mut buf, name)?;
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::ShardPerVertex {
                name,
                start,
                end,
                deadline_ms,
            } => {
                buf.push(11);
                put_str(&mut buf, name)?;
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&end.to_le_bytes());
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Request::ShardJoin { addr } => {
                buf.push(12);
                put_str(&mut buf, addr)?;
            }
            Request::ShardStat => buf.push(13),
        }
        Ok(buf)
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    /// Returns [`ProtoError::UnknownTag`] for an unrecognized first byte
    /// and [`ProtoError::Malformed`] for anything that does not decode.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(payload);
        let req = Self::decode_inner(&mut d, true)?;
        d.finish()?;
        Ok(req)
    }

    fn decode_inner(d: &mut Dec<'_>, allow_batch: bool) -> Result<Request, ProtoError> {
        let tag = d.u8()?;
        let req = match tag {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Count {
                name: d.string()?,
                deadline_ms: d.u64()?,
            },
            3 => Request::PerVertex {
                name: d.string()?,
                start: d.u32()?,
                end: d.u32()?,
                deadline_ms: d.u64()?,
            },
            4 => Request::KClique {
                name: d.string()?,
                k: d.u32()?,
                deadline_ms: d.u64()?,
            },
            5 => Request::LoadGraph {
                name: d.string()?,
                spec: d.string()?,
            },
            6 => Request::EvictGraph { name: d.string()? },
            7 => Request::Drain,
            8 => {
                if !allow_batch {
                    return Err(ProtoError::Malformed("batches do not nest".into()));
                }
                let count = d.u16()? as usize;
                if count > MAX_BATCH {
                    return Err(ProtoError::Malformed(format!(
                        "batch of {count} exceeds the {MAX_BATCH}-request cap"
                    )));
                }
                let mut items = Vec::with_capacity(count.min(MAX_PREALLOC_BYTES / 64));
                for _ in 0..count {
                    let len = d.u32()? as usize;
                    let bytes = d.take(len)?;
                    let mut inner = Dec::new(bytes);
                    let item = Self::decode_inner(&mut inner, false)?;
                    inner.finish()?;
                    items.push(item);
                }
                Request::Batch(items)
            }
            9 => Request::ShardLoad {
                name: d.string()?,
                spec: d.string()?,
                parts: d.u32()?,
                index: d.u32()?,
            },
            10 => Request::ShardCount {
                name: d.string()?,
                deadline_ms: d.u64()?,
            },
            11 => Request::ShardPerVertex {
                name: d.string()?,
                start: d.u32()?,
                end: d.u32()?,
                deadline_ms: d.u64()?,
            },
            12 => Request::ShardJoin { addr: d.string()? },
            13 => Request::ShardStat,
            other => return Err(ProtoError::UnknownTag(other)),
        };
        Ok(req)
    }
}

impl Response {
    /// Encodes the response payload (tag + fields).
    ///
    /// # Errors
    /// Returns [`ProtoError::Malformed`] when a string field exceeds the
    /// u16 length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => buf.push(0),
            Response::Stats(s) => {
                buf.push(1);
                buf.extend_from_slice(&s.graphs.to_le_bytes());
                buf.extend_from_slice(&s.resident_bytes.to_le_bytes());
                buf.extend_from_slice(&s.budget_bytes.to_le_bytes());
                buf.extend_from_slice(&s.requests_served.to_le_bytes());
                buf.extend_from_slice(&s.overloaded.to_le_bytes());
                buf.extend_from_slice(&s.deadline_expired.to_le_bytes());
                buf.extend_from_slice(&s.cache_hits.to_le_bytes());
                buf.extend_from_slice(&s.cache_misses.to_le_bytes());
                buf.extend_from_slice(&s.panics.to_le_bytes());
                buf.extend_from_slice(&s.workers.to_le_bytes());
                buf.extend_from_slice(&s.queue_capacity.to_le_bytes());
                buf.extend_from_slice(&s.snapshot_writes.to_le_bytes());
                buf.extend_from_slice(&s.journal_appends.to_le_bytes());
                buf.extend_from_slice(&s.journal_replays.to_le_bytes());
                buf.extend_from_slice(&s.recovery_quarantined.to_le_bytes());
                buf.extend_from_slice(&s.recovery_ms.to_le_bytes());
                buf.extend_from_slice(&s.conns_accepted.to_le_bytes());
                buf.extend_from_slice(&s.conns_open.to_le_bytes());
                buf.extend_from_slice(&s.event_threads.to_le_bytes());
                if s.loop_stats.len() > u16::MAX as usize {
                    return Err(ProtoError::Malformed(format!(
                        "{} loop stats exceed the u16 count prefix",
                        s.loop_stats.len()
                    )));
                }
                buf.extend_from_slice(&(s.loop_stats.len() as u16).to_le_bytes());
                for l in &s.loop_stats {
                    buf.extend_from_slice(&l.readiness_events.to_le_bytes());
                    buf.extend_from_slice(&l.loop_wakeups.to_le_bytes());
                }
            }
            Response::Count {
                triangles,
                cached,
                wall_micros,
            } => {
                buf.push(2);
                buf.extend_from_slice(&triangles.to_le_bytes());
                buf.push(u8::from(*cached));
                buf.extend_from_slice(&wall_micros.to_le_bytes());
            }
            Response::PerVertex { start, counts } => {
                buf.push(3);
                buf.extend_from_slice(&start.to_le_bytes());
                buf.extend_from_slice(&(counts.len() as u32).to_le_bytes());
                for &c in counts {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
            }
            Response::KClique { k, cliques } => {
                buf.push(4);
                buf.extend_from_slice(&k.to_le_bytes());
                buf.extend_from_slice(&cliques.to_le_bytes());
            }
            Response::Loaded {
                vertices,
                edges,
                bytes,
                evicted,
            } => {
                buf.push(5);
                buf.extend_from_slice(&vertices.to_le_bytes());
                buf.extend_from_slice(&edges.to_le_bytes());
                buf.extend_from_slice(&bytes.to_le_bytes());
                buf.extend_from_slice(&evicted.to_le_bytes());
            }
            Response::Evicted { existed } => {
                buf.push(6);
                buf.push(u8::from(*existed));
            }
            Response::Draining => buf.push(7),
            Response::ShardJoined { shards } => {
                buf.push(10);
                buf.extend_from_slice(&shards.to_le_bytes());
            }
            Response::ShardStat {
                graphs,
                owned_vertices,
                entries,
                ghost_entries,
            } => {
                buf.push(11);
                buf.extend_from_slice(&graphs.to_le_bytes());
                buf.extend_from_slice(&owned_vertices.to_le_bytes());
                buf.extend_from_slice(&entries.to_le_bytes());
                buf.extend_from_slice(&ghost_entries.to_le_bytes());
            }
            Response::Batch(items) => {
                buf.push(8);
                buf.extend_from_slice(&(items.len() as u16).to_le_bytes());
                for item in items {
                    let inner = item.encode()?;
                    buf.extend_from_slice(&(inner.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&inner);
                }
            }
            Response::Error { kind, message } => {
                buf.push(9);
                buf.push(kind.tag());
                put_str(&mut buf, message)?;
            }
        }
        Ok(buf)
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    /// Returns [`ProtoError::UnknownTag`] for an unrecognized first byte
    /// and [`ProtoError::Malformed`] for anything that does not decode.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let resp = Self::decode_inner(&mut d, true)?;
        d.finish()?;
        Ok(resp)
    }

    fn decode_inner(d: &mut Dec<'_>, allow_batch: bool) -> Result<Response, ProtoError> {
        let tag = d.u8()?;
        let resp = match tag {
            0 => Response::Pong,
            1 => {
                let mut s = StatsReply {
                    graphs: d.u32()?,
                    resident_bytes: d.u64()?,
                    budget_bytes: d.u64()?,
                    requests_served: d.u64()?,
                    overloaded: d.u64()?,
                    deadline_expired: d.u64()?,
                    cache_hits: d.u64()?,
                    cache_misses: d.u64()?,
                    panics: d.u64()?,
                    workers: d.u32()?,
                    queue_capacity: d.u32()?,
                    snapshot_writes: d.u64()?,
                    journal_appends: d.u64()?,
                    journal_replays: d.u64()?,
                    recovery_quarantined: d.u64()?,
                    recovery_ms: d.u64()?,
                    conns_accepted: d.u64()?,
                    conns_open: d.u64()?,
                    event_threads: d.u32()?,
                    loop_stats: Vec::new(),
                };
                let loops = d.u16()? as usize;
                s.loop_stats.reserve(loops.min(MAX_PREALLOC_BYTES / 16));
                for _ in 0..loops {
                    s.loop_stats.push(LoopStat {
                        readiness_events: d.u64()?,
                        loop_wakeups: d.u64()?,
                    });
                }
                Response::Stats(s)
            }
            2 => Response::Count {
                triangles: d.u64()?,
                cached: d.u8()? != 0,
                wall_micros: d.u64()?,
            },
            3 => {
                let start = d.u32()?;
                let len = d.u32()? as usize;
                let mut counts = Vec::with_capacity(len.min(MAX_PREALLOC_BYTES / 8));
                for _ in 0..len {
                    counts.push(d.u64()?);
                }
                Response::PerVertex { start, counts }
            }
            4 => Response::KClique {
                k: d.u32()?,
                cliques: d.u64()?,
            },
            5 => Response::Loaded {
                vertices: d.u32()?,
                edges: d.u64()?,
                bytes: d.u64()?,
                evicted: d.u32()?,
            },
            6 => Response::Evicted {
                existed: d.u8()? != 0,
            },
            7 => Response::Draining,
            8 => {
                if !allow_batch {
                    return Err(ProtoError::Malformed("batches do not nest".into()));
                }
                let count = d.u16()? as usize;
                let mut items = Vec::with_capacity(count.min(MAX_PREALLOC_BYTES / 64));
                for _ in 0..count {
                    let len = d.u32()? as usize;
                    let bytes = d.take(len)?;
                    let mut inner = Dec::new(bytes);
                    let item = Self::decode_inner(&mut inner, false)?;
                    inner.finish()?;
                    items.push(item);
                }
                Response::Batch(items)
            }
            9 => Response::Error {
                kind: ErrorKind::from_tag(d.u8()?)?,
                message: d.string()?,
            },
            10 => Response::ShardJoined { shards: d.u32()? },
            11 => Response::ShardStat {
                graphs: d.u32()?,
                owned_vertices: d.u64()?,
                entries: d.u64()?,
                ghost_entries: d.u64()?,
            },
            other => return Err(ProtoError::UnknownTag(other)),
        };
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame around an already-encoded payload.
///
/// # Errors
/// Returns [`ProtoError::Oversized`] when the payload exceeds
/// [`MAX_FRAME_PAYLOAD`], or an [`ProtoError::Io`] on write failure.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(ProtoError::Oversized(payload.len() as u32));
    }
    let mut digest = Crc32::new();
    let mut head = Vec::with_capacity(12 + payload.len() + 4);
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&VERSION.to_le_bytes());
    head.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    head.extend_from_slice(payload);
    digest.update(&head);
    head.extend_from_slice(&digest.finalize().to_le_bytes());
    writer.write_all(&head)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, returning the verified payload bytes.
///
/// The declared length is validated against [`MAX_FRAME_PAYLOAD`] before
/// anything is allocated, and the read buffer's reservation is capped at
/// `lotus_graph::io::MAX_PREALLOC_BYTES` — a hostile length costs a typed
/// error, never a giant allocation.
///
/// # Errors
/// Returns the specific [`ProtoError`] for EOF mid-frame, a bad magic,
/// version, length, or CRC, or any transport failure.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<Vec<u8>, ProtoError> {
    let mut digest = Crc32::new();
    let mut head = [0u8; 4];
    reader.read_exact(&mut head)?;
    digest.update(&head);
    if &head != MAGIC {
        return Err(ProtoError::BadMagic(head));
    }
    let mut buf4 = [0u8; 4];
    read_exact_or_truncated(reader, &mut buf4)?;
    digest.update(&buf4);
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    read_exact_or_truncated(reader, &mut buf4)?;
    digest.update(&buf4);
    let len = u32::from_le_bytes(buf4);
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; (len as usize).min(MAX_PRELLOC_CHUNK)];
    let mut filled = 0usize;
    while filled < len as usize {
        let want = ((len as usize) - filled).min(MAX_PRELLOC_CHUNK);
        if payload.len() < filled + want {
            payload.resize(filled + want, 0);
        }
        read_exact_or_truncated(reader, &mut payload[filled..filled + want])?;
        filled += want;
    }
    digest.update(&payload);
    read_exact_or_truncated(reader, &mut buf4)?;
    let stored = u32::from_le_bytes(buf4);
    let computed = digest.finalize();
    if stored != computed {
        return Err(ProtoError::BadCrc { stored, computed });
    }
    Ok(payload)
}

/// Largest single growth step while reading a declared-length payload;
/// equals the untrusted-header prealloc cap of `lotus_graph::io`.
const MAX_PRELLOC_CHUNK: usize = MAX_PREALLOC_BYTES;

/// `read_exact` that maps EOF inside a frame to [`ProtoError::Truncated`].
fn read_exact_or_truncated<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), ProtoError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    })
}

/// Outcome of scanning an accumulation buffer for one complete frame
/// (the event loop's nonblocking counterpart of [`read_frame`]).
#[derive(Debug)]
pub enum FrameProgress {
    /// Not enough bytes buffered yet; keep reading. Every check that
    /// *could* fail on the bytes present has already passed — damage is
    /// reported at the earliest byte that proves it.
    Incomplete,
    /// One complete, CRC-verified frame.
    Frame {
        /// The verified payload bytes.
        payload: Vec<u8>,
        /// Total frame bytes to drain from the buffer (header + payload
        /// + trailer).
        consumed: usize,
    },
    /// Unrecoverable framing damage: the stream cannot be
    /// resynchronized. The connection must answer with a typed
    /// `protocol` error and close.
    Damaged(ProtoError),
}

/// Scans the front of `buf` for one frame without blocking.
///
/// Header fields are validated as soon as their bytes arrive — a bad
/// magic fails on the first mismatching byte and an oversized declared
/// length is rejected from the 12-byte header alone, before any payload
/// is buffered (the same untrusted-length discipline as [`read_frame`]).
/// The CRC trailer is checked once the whole frame is present.
#[must_use]
pub fn try_parse_frame(buf: &[u8]) -> FrameProgress {
    // Magic: compare the prefix that has arrived so far, so garbage
    // (e.g. an HTTP request) is rejected without waiting for 12 bytes.
    let head = buf.len().min(4);
    if buf[..head] != MAGIC[..head] {
        let mut seen = [0u8; 4];
        seen[..head].copy_from_slice(&buf[..head]);
        return FrameProgress::Damaged(ProtoError::BadMagic(seen));
    }
    if buf.len() < 12 {
        return FrameProgress::Incomplete;
    }
    let version = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if version != VERSION {
        return FrameProgress::Damaged(ProtoError::BadVersion(version));
    }
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_FRAME_PAYLOAD {
        return FrameProgress::Damaged(ProtoError::Oversized(len));
    }
    let total = 12 + len as usize + 4;
    if buf.len() < total {
        return FrameProgress::Incomplete;
    }
    let mut digest = Crc32::new();
    digest.update(&buf[..total - 4]);
    let computed = digest.finalize();
    let stored = u32::from_le_bytes([
        buf[total - 4],
        buf[total - 3],
        buf[total - 2],
        buf[total - 1],
    ]);
    if stored != computed {
        return FrameProgress::Damaged(ProtoError::BadCrc { stored, computed });
    }
    FrameProgress::Frame {
        payload: buf[12..total - 4].to_vec(),
        consumed: total,
    }
}

/// Encodes a response and wraps it in a complete frame, returned as
/// bytes (the event loop's write-queue unit).
///
/// # Errors
/// Propagates encoding failures as [`ProtoError`].
pub fn frame_response(resp: &Response) -> Result<Vec<u8>, ProtoError> {
    let mut bytes = Vec::new();
    write_response(&mut bytes, resp)?;
    Ok(bytes)
}

/// Encodes and frames a request in one step.
///
/// # Errors
/// Propagates encoding and transport errors as [`ProtoError`].
pub fn write_request<W: Write>(writer: &mut W, req: &Request) -> Result<(), ProtoError> {
    write_frame(writer, &req.encode()?)
}

/// Encodes and frames a response in one step.
///
/// # Errors
/// Propagates encoding and transport errors as [`ProtoError`].
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> Result<(), ProtoError> {
    write_frame(writer, &resp.encode()?)
}

/// Reads and decodes one response frame.
///
/// # Errors
/// Propagates framing and decoding failures as [`ProtoError`].
pub fn read_response<R: Read>(reader: &mut R) -> Result<Response, ProtoError> {
    Response::decode(&read_frame(reader)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(&Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: &Response) {
        let mut wire = Vec::new();
        write_response(&mut wire, resp).unwrap();
        assert_eq!(&read_response(&mut wire.as_slice()).unwrap(), resp);
    }

    #[test]
    fn all_requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Stats,
            Request::Count {
                name: "g".into(),
                deadline_ms: NO_DEADLINE,
            },
            Request::PerVertex {
                name: "graph-ü".into(),
                start: 5,
                end: 105,
                deadline_ms: 250,
            },
            Request::KClique {
                name: "g".into(),
                k: 4,
                deadline_ms: 0,
            },
            Request::LoadGraph {
                name: "ci".into(),
                spec: "rmat:9:8:7".into(),
            },
            Request::EvictGraph { name: "ci".into() },
            Request::Drain,
            Request::Batch(vec![
                Request::Ping,
                Request::Count {
                    name: "g".into(),
                    deadline_ms: 9,
                },
            ]),
            Request::ShardLoad {
                name: "ci".into(),
                spec: "rmat:9:8:7".into(),
                parts: 3,
                index: 2,
            },
            Request::ShardCount {
                name: "ci".into(),
                deadline_ms: 400,
            },
            Request::ShardPerVertex {
                name: "ci".into(),
                start: 0,
                end: 128,
                deadline_ms: NO_DEADLINE,
            },
            Request::ShardJoin {
                addr: "127.0.0.1:9001".into(),
            },
            Request::ShardStat,
        ];
        for req in &reqs {
            round_trip_request(req);
        }
    }

    #[test]
    fn all_responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::Stats(StatsReply {
                graphs: 2,
                resident_bytes: 1024,
                budget_bytes: 1 << 20,
                requests_served: 10,
                overloaded: 1,
                deadline_expired: 2,
                cache_hits: 7,
                cache_misses: 3,
                panics: 0,
                workers: 4,
                queue_capacity: 64,
                snapshot_writes: 6,
                journal_appends: 8,
                journal_replays: 5,
                recovery_quarantined: 1,
                recovery_ms: 17,
                conns_accepted: 100,
                conns_open: 12,
                event_threads: 2,
                loop_stats: vec![
                    LoopStat {
                        readiness_events: 40,
                        loop_wakeups: 19,
                    },
                    LoopStat {
                        readiness_events: 60,
                        loop_wakeups: 23,
                    },
                ],
            }),
            Response::Count {
                triangles: 123_456,
                cached: true,
                wall_micros: 42,
            },
            Response::PerVertex {
                start: 3,
                counts: vec![0, 5, 17, u64::MAX],
            },
            Response::KClique { k: 5, cliques: 99 },
            Response::Loaded {
                vertices: 512,
                edges: 4096,
                bytes: 123_456,
                evicted: 1,
            },
            Response::Evicted { existed: false },
            Response::Draining,
            Response::ShardJoined { shards: 3 },
            Response::ShardStat {
                graphs: 1,
                owned_vertices: 171,
                entries: 2048,
                ghost_entries: 301,
            },
            Response::error(ErrorKind::ShardUnavailable, "shard 1 timed out"),
            Response::Batch(vec![
                Response::Pong,
                Response::error(ErrorKind::NotFound, "x"),
            ]),
            Response::error(ErrorKind::Overloaded, "queue full"),
        ];
        for resp in &resps {
            round_trip_response(resp);
        }
    }

    #[test]
    fn error_kinds_round_trip_their_tags() {
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_tag(kind.tag()).unwrap(), kind);
        }
        assert!(ErrorKind::from_tag(200).is_err());
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        // Hand-craft a frame declaring a 4 GiB-ish payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&VERSION.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(
            matches!(err, ProtoError::Oversized(len) if len == u32::MAX),
            "{err}"
        );
    }

    #[test]
    fn large_declared_length_with_short_body_is_truncated_not_allocated() {
        // Declared length below the cap but way past the prealloc chunk:
        // the reader grows in ≤64 KiB steps and reports Truncated.
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&VERSION.to_le_bytes());
        wire.extend_from_slice(&(MAX_FRAME_PAYLOAD - 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 100]);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::Truncated), "{err}");
    }

    #[test]
    fn corrupted_byte_fails_the_crc() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::Count {
                name: "graph".into(),
                deadline_ms: NO_DEADLINE,
            },
        )
        .unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x40;
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(
            matches!(err, ProtoError::BadCrc { .. } | ProtoError::Malformed(_)),
            "{err}"
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let err = read_frame(&mut &b"XXXXxxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, ProtoError::BadMagic(_)), "{err}");

        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&99u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, ProtoError::BadVersion(99)), "{err}");
    }

    #[test]
    fn unknown_tag_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[200u8]).unwrap();
        let payload = read_frame(&mut wire.as_slice()).unwrap();
        assert!(matches!(
            Request::decode(&payload).unwrap_err(),
            ProtoError::UnknownTag(200)
        ));
        assert!(matches!(
            Response::decode(&payload).unwrap_err(),
            ProtoError::UnknownTag(200)
        ));
    }

    #[test]
    fn trailing_garbage_after_message_is_malformed() {
        let mut payload = Request::Ping.encode().unwrap();
        payload.push(7);
        assert!(matches!(
            Request::decode(&payload).unwrap_err(),
            ProtoError::Malformed(_)
        ));
    }

    #[test]
    fn nested_batches_are_rejected() {
        let nested = Request::Batch(vec![Request::Batch(vec![Request::Ping])]);
        assert!(nested.encode().is_err());
    }

    #[test]
    fn incremental_parser_handles_byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::Count {
                name: "graph".into(),
                deadline_ms: 120,
            },
        )
        .unwrap();
        for cut in 0..wire.len() {
            assert!(
                matches!(try_parse_frame(&wire[..cut]), FrameProgress::Incomplete),
                "prefix of {cut} bytes should be incomplete"
            );
        }
        match try_parse_frame(&wire) {
            FrameProgress::Frame { payload, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(
                    Request::decode(&payload).unwrap(),
                    Request::Count {
                        name: "graph".into(),
                        deadline_ms: 120,
                    }
                );
            }
            other => panic!("expected a complete frame, got {other:?}"),
        }
    }

    #[test]
    fn incremental_parser_finds_back_to_back_frames() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).unwrap();
        let first = wire.len();
        write_request(&mut wire, &Request::Stats).unwrap();
        let FrameProgress::Frame { consumed, .. } = try_parse_frame(&wire) else {
            panic!("first frame should parse");
        };
        assert_eq!(consumed, first);
        let FrameProgress::Frame { payload, consumed } = try_parse_frame(&wire[first..]) else {
            panic!("second frame should parse");
        };
        assert_eq!(consumed, wire.len() - first);
        assert_eq!(Request::decode(&payload).unwrap(), Request::Stats);
    }

    #[test]
    fn incremental_parser_rejects_damage_at_the_earliest_byte() {
        // One wrong byte of magic: damaged immediately, not Incomplete.
        assert!(matches!(
            try_parse_frame(b"X"),
            FrameProgress::Damaged(ProtoError::BadMagic(_))
        ));
        // Oversized declared length: damaged from the header alone.
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&VERSION.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            try_parse_frame(&wire),
            FrameProgress::Damaged(ProtoError::Oversized(_))
        ));
        // Wrong version.
        let mut wire = Vec::new();
        wire.extend_from_slice(MAGIC);
        wire.extend_from_slice(&7u32.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            try_parse_frame(&wire),
            FrameProgress::Damaged(ProtoError::BadVersion(7))
        ));
        // Flipped payload byte: CRC mismatch once the frame completes.
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Drain).unwrap();
        wire[12] ^= 0x10;
        assert!(matches!(
            try_parse_frame(&wire),
            FrameProgress::Damaged(ProtoError::BadCrc { .. })
        ));
    }
}
