//! Startup recovery: rebuild the durable registry state from disk.
//!
//! Recovery replays the manifest journal to the last synced record,
//! then verifies every snapshot the folded state references — full
//! CRC-checked `lotus_graph::io::load_binary` reads, not just header
//! sniffs. Damage never aborts startup: a torn or corrupt snapshot is
//! *quarantined* (renamed into `<data_dir>/quarantine/`, logged in the
//! report) and its graph dropped from the recovered set; a torn journal
//! tail is discarded by compaction; leftover `*.tmp` files from a crash
//! before rename are quarantined too. The daemon then serves exactly
//! the graphs whose registration was durably acknowledged — bit-identical
//! counts, because snapshots store the canonical edge list and
//! preprocessing is deterministic. See DESIGN.md §13.

use std::path::{Path, PathBuf};
use std::time::Instant;

use lotus_graph::io::load_binary;
use lotus_graph::EdgeList;
use lotus_telemetry::json::Json;

use crate::journal::{self, JournalReadout};
use crate::store::{dec_name, snapshot_dir, SNAPSHOT_SUFFIX, TEMP_SUFFIX};

/// One graph recovered from its snapshot, ready to prepare and serve.
#[derive(Debug)]
pub struct RecoveredGraph {
    /// Registry key.
    pub name: String,
    /// Source spec recorded at registration time.
    pub spec: String,
    /// The CRC-verified canonical edge list from the snapshot.
    pub edges: EdgeList,
}

/// A damaged file set aside during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// File name (relative to the data dir) that was damaged.
    pub file: String,
    /// Human-readable reason (truncated, crc mismatch, orphan temp...).
    pub reason: String,
}

/// What recovery did, for logs, `Stats`, and `BENCH.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Graphs whose snapshots verified and were reloaded.
    pub recovered: u64,
    /// Files set aside (or journal entries dropped) as damaged.
    pub quarantined: Vec<Quarantined>,
    /// Intact journal records replayed.
    pub journal_records: u64,
    /// Journal damage (torn tail / corruption), if any was found.
    pub journal_damage: Option<String>,
    /// Wall-clock milliseconds the whole recovery pass took.
    pub recovery_ms: u64,
}

impl RecoveryReport {
    /// The report as a JSON object (the `recovery.json` artifact and
    /// the `lotus serve recover` output).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "recovered".into(),
                Json::Int(i64::try_from(self.recovered).unwrap_or(i64::MAX)),
            ),
            (
                "quarantined".into(),
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|q| {
                            Json::Obj(vec![
                                ("file".into(), Json::Str(q.file.clone())),
                                ("reason".into(), Json::Str(q.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "journal_records".into(),
                Json::Int(i64::try_from(self.journal_records).unwrap_or(i64::MAX)),
            ),
            (
                "journal_damage".into(),
                self.journal_damage
                    .as_ref()
                    .map_or(Json::Null, |d| Json::Str(d.clone())),
            ),
            (
                "recovery_ms".into(),
                Json::Int(i64::try_from(self.recovery_ms).unwrap_or(i64::MAX)),
            ),
        ])
    }
}

/// Everything recovery reconstructed from the data dir.
#[derive(Debug)]
pub struct RecoveredState {
    /// Verified graphs, in journal (registration) order.
    pub graphs: Vec<RecoveredGraph>,
    /// The surviving durable `(name, spec)` set — `graphs` minus nothing;
    /// kept separately so the store can seed its manifest map without
    /// cloning edge lists.
    pub entries: Vec<(String, String)>,
    /// What happened.
    pub report: RecoveryReport,
}

/// Replays the journal and verifies snapshots under `data_dir`.
///
/// With `dry_run` set, nothing on disk is touched: damaged files are
/// reported but not renamed and the journal is not compacted. Otherwise
/// damaged snapshots and orphan temp files move to
/// `<data_dir>/quarantine/` and a journal with a torn tail is rewritten
/// to just the synced, surviving state.
///
/// # Errors
/// Only environmental I/O failures (cannot create the data or
/// quarantine dirs, cannot list snapshots). Damaged *contents* are
/// never an error — that is the point.
pub fn recover(data_dir: impl AsRef<Path>, dry_run: bool) -> std::io::Result<RecoveredState> {
    let start = Instant::now();
    let data_dir = data_dir.as_ref();
    let snap_dir = snapshot_dir(data_dir);
    if !dry_run {
        std::fs::create_dir_all(&snap_dir)?;
    }

    let journal_path = data_dir.join("journal.lotj");
    let readout: JournalReadout = journal::read_journal(&journal_path)?;
    let folded = readout.fold();

    let mut report = RecoveryReport {
        journal_records: readout.records.len() as u64,
        journal_damage: readout.damage.clone(),
        ..RecoveryReport::default()
    };
    let mut graphs = Vec::new();
    let mut entries = Vec::new();

    for (name, spec) in folded {
        let file = crate::store::snapshot_file_name(&name);
        let path = snap_dir.join(&file);
        match load_binary(&path) {
            Ok(edges) => {
                report.recovered += 1;
                entries.push((name.clone(), spec.clone()));
                graphs.push(RecoveredGraph { name, spec, edges });
            }
            Err(e) => {
                let missing = matches!(
                    &e,
                    lotus_graph::GraphError::Io(io)
                        if io.kind() == std::io::ErrorKind::NotFound
                );
                let reason = if missing {
                    "journal names it but no snapshot exists".to_string()
                } else {
                    format!("{e}")
                };
                if !missing && !dry_run {
                    quarantine(data_dir, &path)?;
                }
                report.quarantined.push(Quarantined {
                    file: format!("snapshots/{file}"),
                    reason,
                });
            }
        }
    }

    // Crash-before-rename leaves `*.tmp` behind; set those aside too so
    // the snapshot dir only ever holds verified, complete files.
    if let Ok(dir) = std::fs::read_dir(&snap_dir) {
        let mut temps: Vec<PathBuf> = dir
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(TEMP_SUFFIX))
            .collect();
        temps.sort();
        for path in temps {
            let file = path
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !dry_run {
                quarantine(data_dir, &path)?;
            }
            report.quarantined.push(Quarantined {
                file: format!("snapshots/{file}"),
                reason: "torn temp file (crash before rename)".to_string(),
            });
        }
    }

    // A crash during journal compaction (`journal::rewrite`) leaves a
    // `journal.lotj.tmp` in the data dir root; set it aside like any
    // other torn temp so it cannot linger indefinitely.
    let journal_tmp = data_dir.join("journal.lotj.tmp");
    if journal_tmp.exists() {
        if !dry_run {
            quarantine(data_dir, &journal_tmp)?;
        }
        report.quarantined.push(Quarantined {
            file: "journal.lotj.tmp".to_string(),
            reason: "torn journal rewrite (crash mid-compaction)".to_string(),
        });
    }

    // A torn or damaged journal compacts down to the verified state so
    // the next crash replays from a clean file.
    if !dry_run && (report.journal_damage.is_some() || !report.quarantined.is_empty()) {
        journal::rewrite(&journal_path, &entries)?;
    }

    report.recovery_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    Ok(RecoveredState {
        graphs,
        entries,
        report,
    })
}

/// Moves a damaged file into `<data_dir>/quarantine/`, preserving its
/// file name. Rename within the same filesystem, so cheap and atomic.
fn quarantine(data_dir: &Path, path: &Path) -> std::io::Result<()> {
    let qdir = data_dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let file = path.file_name().map_or_else(
        || "unnamed".to_string(),
        |f| f.to_string_lossy().into_owned(),
    );
    std::fs::rename(path, qdir.join(file))?;
    Ok(())
}

/// Names (decoded) of every complete snapshot present on disk,
/// whether or not the journal references them. Used by checkpoint GC.
pub(crate) fn snapshots_on_disk(data_dir: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    if let Ok(dir) = std::fs::read_dir(snapshot_dir(data_dir)) {
        for entry in dir.flatten() {
            let path = entry.path();
            let file = path
                .file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default();
            if let Some(stem) = file.strip_suffix(SNAPSHOT_SUFFIX) {
                out.push((dec_name(stem), path));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::DurableStore;
    use lotus_gen::Rmat;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lotus-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn empty_data_dir_recovers_to_nothing() {
        let dir = tmp_dir("empty");
        let state = recover(&dir, false).unwrap();
        assert!(state.graphs.is_empty());
        assert!(state.report.quarantined.is_empty());
        assert_eq!(state.report.journal_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registered_graphs_come_back_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let graph = Rmat::new(6, 4).generate(7);
        let edges = graph.to_canonical_edges();
        {
            let store = DurableStore::open(&dir).unwrap().0;
            store.record_register("g", "rmat:6:4:7", &graph).unwrap();
        }
        let state = recover(&dir, false).unwrap();
        assert_eq!(state.graphs.len(), 1);
        assert_eq!(state.graphs[0].name, "g");
        assert_eq!(state.graphs[0].spec, "rmat:6:4:7");
        assert_eq!(state.graphs[0].edges, edges);
        assert_eq!(state.report.recovered, 1);
        assert!(state.report.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dry_run_reports_but_touches_nothing() {
        let dir = tmp_dir("dry");
        let graph = Rmat::new(6, 4).generate(7);
        {
            let store = DurableStore::open(&dir).unwrap().0;
            store.record_register("g", "rmat:6:4:7", &graph).unwrap();
        }
        // Corrupt the snapshot payload.
        let snaps = snapshots_on_disk(&dir);
        assert_eq!(snaps.len(), 1);
        let mut bytes = std::fs::read(&snaps[0].1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&snaps[0].1, &bytes).unwrap();

        let state = recover(&dir, true).unwrap();
        assert_eq!(state.report.recovered, 0);
        assert_eq!(state.report.quarantined.len(), 1);
        // Dry run: file still in place, no quarantine dir.
        assert!(snaps[0].1.exists());
        assert!(!dir.join("quarantine").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journal_rewrite_temp_is_quarantined() {
        let dir = tmp_dir("jtmp");
        let graph = Rmat::new(6, 4).generate(7);
        {
            let store = DurableStore::open(&dir).unwrap().0;
            store.record_register("g", "rmat:6:4:7", &graph).unwrap();
        }
        // A crash mid-`journal::rewrite` leaves this behind in the data
        // dir root (not under snapshots/).
        std::fs::write(dir.join("journal.lotj.tmp"), b"half a checkpoint").unwrap();

        // Dry run: reported, left in place.
        let state = recover(&dir, true).unwrap();
        assert!(state
            .report
            .quarantined
            .iter()
            .any(|q| q.file == "journal.lotj.tmp"));
        assert!(dir.join("journal.lotj.tmp").exists());

        // Real run: moved to quarantine, graph unaffected.
        let state = recover(&dir, false).unwrap();
        assert!(state
            .report
            .quarantined
            .iter()
            .any(|q| q.file == "journal.lotj.tmp"));
        assert!(!dir.join("journal.lotj.tmp").exists());
        assert!(dir.join("quarantine").join("journal.lotj.tmp").exists());
        assert_eq!(state.graphs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_shape() {
        let report = RecoveryReport {
            recovered: 2,
            quarantined: vec![Quarantined {
                file: "snapshots/x.lotg".into(),
                reason: "crc mismatch".into(),
            }],
            journal_records: 5,
            journal_damage: Some("torn record at offset 99".into()),
            recovery_ms: 12,
        };
        let json = report.to_json();
        assert_eq!(json.get("recovered").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("recovery_ms").and_then(Json::as_u64), Some(12));
        assert_eq!(
            json.get("quarantined")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        assert!(json.get("journal_damage").and_then(Json::as_str).is_some());
    }
}
