//! The preprocessed-graph registry: load/build once, serve many times.
//!
//! Every query names a graph; the registry resolves the name to a fully
//! preprocessed [`PreparedGraph`] (CSR topology plus the LOTUS
//! structures of Algorithm 2) built exactly once and shared by `Arc`.
//! Resident graphs are charged by their topology bytes against a
//! `lotus_resilience::MemoryBudget`; when an insert would exceed the
//! budget, least-recently-used graphs are evicted until it fits. A graph
//! larger than the whole budget is refused with a typed error rather
//! than evicting everything for nothing.

use lotus_telemetry::sync::{TracedGuard, TracedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

use lotus_core::preprocess::build_lotus_graph;
use lotus_core::{LotusConfig, LotusGraph};
use lotus_gen::{ErdosRenyi, Rmat};
use lotus_graph::io::{load_binary, load_edge_list_text};
use lotus_graph::UndirectedCsr;
use lotus_resilience::MemoryBudget;
use lotus_telemetry::{counters, Counter};

/// A graph the registry has fully prepared for serving.
#[derive(Debug)]
pub struct PreparedGraph {
    /// Registry key the graph is stored under.
    pub name: String,
    /// The undirected simple graph.
    pub graph: UndirectedCsr,
    /// The preprocessed LOTUS structures (H2H, HE, NHE, relabeling).
    pub lotus: LotusGraph,
    /// Configuration the structures were built with.
    pub config: LotusConfig,
    /// Bytes charged against the registry budget (CSR + LOTUS topology).
    pub bytes: u64,
}

/// How a graph may be sourced, parsed from the wire spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// `path:<file>` — load from disk; `.lotg` means the v2 binary
    /// format, anything else the text edge-list format.
    Path(String),
    /// `rmat:<scale>:<edge_factor>:<seed>` — Graph500 R-MAT.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Sampled edges per vertex.
        edge_factor: u32,
        /// Generator seed.
        seed: u64,
    },
    /// `er:<n>:<m>:<seed>` — Erdős–Rényi `G(n, m)`.
    Er {
        /// Vertex count.
        n: u32,
        /// Sampled edge count.
        m: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Parses a spec string (`path:...`, `rmat:s:ef:seed`, `er:n:m:seed`).
    ///
    /// # Errors
    /// Returns a human-readable description of what failed to parse.
    pub fn parse(spec: &str) -> Result<GraphSpec, String> {
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("spec `{spec}` has no `kind:` prefix"))?;
        match kind {
            "path" => {
                if rest.is_empty() {
                    return Err("path spec has an empty file name".into());
                }
                Ok(GraphSpec::Path(rest.to_string()))
            }
            "rmat" => {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 3 {
                    return Err(format!("rmat spec `{spec}` wants rmat:scale:ef:seed"));
                }
                let scale: u32 = parse_field(parts[0], "scale")?;
                if scale == 0 || scale > 24 {
                    return Err(format!("rmat scale {scale} outside 1..=24"));
                }
                let edge_factor: u32 = parse_field(parts[1], "edge_factor")?;
                if edge_factor == 0 || edge_factor > 64 {
                    return Err(format!("rmat edge_factor {edge_factor} outside 1..=64"));
                }
                Ok(GraphSpec::Rmat {
                    scale,
                    edge_factor,
                    seed: parse_field(parts[2], "seed")?,
                })
            }
            "er" => {
                let parts: Vec<&str> = rest.split(':').collect();
                if parts.len() != 3 {
                    return Err(format!("er spec `{spec}` wants er:n:m:seed"));
                }
                let n: u32 = parse_field(parts[0], "n")?;
                if !(2..=(1 << 24)).contains(&n) {
                    return Err(format!("er n {n} outside 2..=2^24"));
                }
                let m: u64 = parse_field(parts[1], "m")?;
                if m > (1 << 28) {
                    return Err(format!("er m {m} exceeds 2^28"));
                }
                Ok(GraphSpec::Er {
                    n,
                    m,
                    seed: parse_field(parts[2], "seed")?,
                })
            }
            other => Err(format!(
                "unknown spec kind `{other}` (expected path, rmat, or er)"
            )),
        }
    }
}

fn parse_field<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("cannot parse {what} from `{s}`"))
}

/// A registry operation failure.
#[derive(Debug)]
pub enum RegistryError {
    /// The name is not resident and is not a parseable spec.
    NotFound(String),
    /// The spec string did not parse or the source failed to load.
    BadSpec(String),
    /// The graph alone exceeds the whole memory budget.
    OverBudget {
        /// Bytes the graph would charge.
        need: u64,
        /// The registry's total budget.
        budget: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NotFound(name) => {
                write!(f, "graph `{name}` is not loaded and is not a spec")
            }
            RegistryError::BadSpec(m) => write!(f, "bad graph spec: {m}"),
            RegistryError::OverBudget { need, budget } => write!(
                f,
                "graph needs {need} bytes but the registry budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

struct Entry {
    prepared: Arc<PreparedGraph>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Entry>,
    /// Logical LRU clock, bumped on every touch.
    clock: u64,
    resident: u64,
}

/// Observer invoked with each name the LRU loop evicts (used by the
/// durability layer to journal evictions it would otherwise never see).
type EvictHook = Arc<dyn Fn(&str) + Send + Sync>;

/// The graph registry: name → prepared graph, LRU-evicted against a
/// byte budget. All methods are callable from any worker thread.
pub struct Registry {
    inner: TracedMutex<Inner>,
    budget: MemoryBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    evict_hook: TracedMutex<Option<EvictHook>>,
}

impl Registry {
    /// Creates a registry bounded by `budget`.
    #[must_use]
    pub fn new(budget: MemoryBudget) -> Registry {
        Registry {
            inner: TracedMutex::new("serve.registry.inner", Inner::default()),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evict_hook: TracedMutex::new("serve.registry.evict_hook", None),
        }
    }

    /// Installs the hook fired (outside the registry lock) for every
    /// name the LRU loop evicts to make room. Explicit [`Registry::evict`]
    /// calls and same-name replacements do *not* fire it — their callers
    /// already know the name.
    pub fn set_evict_hook(&self, hook: impl Fn(&str) + Send + Sync + 'static) {
        *self
            .evict_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(hook));
    }

    fn fire_evict_hook(&self, names: &[String]) {
        if names.is_empty() {
            return;
        }
        let hook = self
            .evict_hook
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(hook) = hook {
            for name in names {
                hook(name);
            }
        }
    }

    /// The registry's byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget.bytes()
    }

    /// Bytes currently charged by resident graphs.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.lock().resident
    }

    /// Number of resident graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when no graphs are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since start.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (loads/builds) since start.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock(&self) -> TracedGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves `name` to a prepared graph: a cache hit bumps the LRU
    /// clock; a miss tries to interpret `name` itself as a spec and
    /// build it (so `Count { name: "rmat:9:8:7" }` works without a prior
    /// `LoadGraph`).
    ///
    /// # Errors
    /// [`RegistryError::NotFound`] when the name is neither resident nor
    /// a spec; the spec/build errors of [`Registry::load`] otherwise.
    pub fn get_or_load(&self, name: &str) -> Result<(Arc<PreparedGraph>, bool), RegistryError> {
        if let Some(prepared) = self.touch(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters::incr(Counter::RegistryHits);
            return Ok((prepared, true));
        }
        // Miss: only a spec-shaped name can be built on demand.
        if GraphSpec::parse(name).is_err() {
            return Err(RegistryError::NotFound(name.to_string()));
        }
        let (prepared, _evicted) = self.load(name, name)?;
        Ok((prepared, false))
    }

    /// Looks up a resident graph and bumps its LRU clock.
    fn touch(&self, name: &str) -> Option<Arc<PreparedGraph>> {
        let mut inner = self.lock();
        let clock = inner.clock + 1;
        inner.clock = clock;
        inner.map.get_mut(name).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.prepared)
        })
    }

    /// Loads/builds `spec` and inserts it under `name`, evicting LRU
    /// graphs as needed. Returns the prepared graph and how many
    /// residents were evicted. Building happens *outside* the registry
    /// lock; a concurrent load of the same name keeps whichever insert
    /// lands last.
    ///
    /// # Errors
    /// [`RegistryError::BadSpec`] when the spec does not parse or its
    /// source fails to load; [`RegistryError::OverBudget`] when the
    /// graph alone exceeds the whole budget.
    pub fn load(&self, name: &str, spec: &str) -> Result<(Arc<PreparedGraph>, u32), RegistryError> {
        let parsed = GraphSpec::parse(spec).map_err(RegistryError::BadSpec)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::RegistryMisses);
        let graph = build_graph(&parsed)?;
        let config = LotusConfig::auto(&graph);
        let lotus = build_lotus_graph(&graph, &config);
        let bytes = graph.topology_bytes() + lotus.topology_bytes();
        if !self.budget.fits(bytes) {
            return Err(RegistryError::OverBudget {
                need: bytes,
                budget: self.budget.bytes(),
            });
        }
        let prepared = Arc::new(PreparedGraph {
            name: name.to_string(),
            graph,
            lotus,
            config,
            bytes,
        });
        let evicted = self.insert_prepared(Arc::clone(&prepared))?;
        Ok((prepared, evicted))
    }

    /// Inserts an externally prepared graph (recovery re-inserting a
    /// snapshot, or the build half of [`Registry::load`]), evicting LRU
    /// residents as needed. Returns how many were evicted; the evict
    /// hook fires for each, outside the lock.
    ///
    /// # Errors
    /// [`RegistryError::OverBudget`] when the graph alone exceeds the
    /// whole budget.
    pub fn insert_prepared(&self, prepared: Arc<PreparedGraph>) -> Result<u32, RegistryError> {
        let bytes = prepared.bytes;
        if !self.budget.fits(bytes) {
            return Err(RegistryError::OverBudget {
                need: bytes,
                budget: self.budget.bytes(),
            });
        }
        let name = prepared.name.clone();
        let mut evicted_names = Vec::new();

        let mut inner = self.lock();
        // Replacing a resident entry under the same name frees its bytes
        // first so the eviction loop sees the true resident total.
        if let Some(old) = inner.map.remove(&name) {
            inner.resident -= old.prepared.bytes;
        }
        while inner.resident + bytes > self.budget.bytes() {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = lru else { break };
            if let Some(old) = inner.map.remove(&key) {
                inner.resident -= old.prepared.bytes;
                evicted_names.push(key);
            }
        }
        let clock = inner.clock + 1;
        inner.clock = clock;
        inner.resident += bytes;
        inner.map.insert(
            name,
            Entry {
                prepared,
                last_used: clock,
            },
        );
        drop(inner);

        self.fire_evict_hook(&evicted_names);
        Ok(u32::try_from(evicted_names.len()).unwrap_or(u32::MAX))
    }

    /// Drops a resident graph; returns whether it existed.
    pub fn evict(&self, name: &str) -> bool {
        let mut inner = self.lock();
        if let Some(old) = inner.map.remove(name) {
            inner.resident -= old.prepared.bytes;
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("graphs", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .field("budget_bytes", &self.budget_bytes())
            .finish()
    }
}

pub(crate) fn build_graph(spec: &GraphSpec) -> Result<UndirectedCsr, RegistryError> {
    match spec {
        GraphSpec::Path(path) => {
            let el = if path.ends_with(".lotg") {
                load_binary(path)
            } else {
                load_edge_list_text(path)
            }
            .map_err(|e| RegistryError::BadSpec(format!("loading `{path}`: {e}")))?;
            Ok(UndirectedCsr::from_canonical_edges(&el))
        }
        GraphSpec::Rmat {
            scale,
            edge_factor,
            seed,
        } => Ok(Rmat::new(*scale, *edge_factor).generate(*seed)),
        GraphSpec::Er { n, m, seed } => Ok(ErdosRenyi::new(*n, *m).generate(*seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn big_budget() -> MemoryBudget {
        MemoryBudget::from_bytes(1 << 30)
    }

    #[test]
    fn spec_grammar() {
        assert_eq!(
            GraphSpec::parse("rmat:9:8:7"),
            Ok(GraphSpec::Rmat {
                scale: 9,
                edge_factor: 8,
                seed: 7
            })
        );
        assert_eq!(
            GraphSpec::parse("er:100:400:1"),
            Ok(GraphSpec::Er {
                n: 100,
                m: 400,
                seed: 1
            })
        );
        assert_eq!(
            GraphSpec::parse("path:data/web.lotg"),
            Ok(GraphSpec::Path("data/web.lotg".into()))
        );
        assert!(GraphSpec::parse("plain-name").is_err());
        assert!(GraphSpec::parse("rmat:9:8").is_err());
        assert!(GraphSpec::parse("rmat:0:8:7").is_err());
        assert!(GraphSpec::parse("rmat:40:8:7").is_err());
        assert!(GraphSpec::parse("er:1:10:1").is_err());
        assert!(GraphSpec::parse("zzz:1").is_err());
        assert!(GraphSpec::parse("path:").is_err());
    }

    #[test]
    fn load_then_hit() {
        let reg = Registry::new(big_budget());
        let (first, evicted) = reg.load("g", "rmat:6:4:1").unwrap();
        assert_eq!(evicted, 0);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.resident_bytes(), first.bytes);

        let (again, cached) = reg.get_or_load("g").unwrap();
        assert!(cached);
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(reg.hits(), 1);
        assert_eq!(reg.misses(), 1);
    }

    #[test]
    fn spec_shaped_name_builds_on_demand() {
        let reg = Registry::new(big_budget());
        let (g, cached) = reg.get_or_load("rmat:6:4:1").unwrap();
        assert!(!cached);
        assert!(g.graph.num_vertices() <= 64);
        let (_, cached) = reg.get_or_load("rmat:6:4:1").unwrap();
        assert!(cached);
    }

    #[test]
    fn unknown_plain_name_is_not_found() {
        let reg = Registry::new(big_budget());
        assert!(matches!(
            reg.get_or_load("nope"),
            Err(RegistryError::NotFound(_))
        ));
        assert_eq!(reg.misses(), 0);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let reg = Registry::new(big_budget());
        let (a, _) = reg.load("a", "rmat:7:4:1").unwrap();
        let (b, _) = reg.load("b", "rmat:7:4:2").unwrap();
        // A budget fitting both plus a sliver of headroom; the third
        // insert must evict the least-recently-used.
        let per = a.bytes.max(b.bytes);
        let reg = Registry::new(MemoryBudget::from_bytes(per * 2 + per / 2));
        reg.load("a", "rmat:7:4:1").unwrap();
        reg.load("b", "rmat:7:4:2").unwrap();
        assert_eq!(reg.len(), 2);
        // Touch `a` so `b` is the LRU victim.
        reg.get_or_load("a").unwrap();
        let (_, evicted) = reg.load("c", "rmat:7:4:3").unwrap();
        assert!(evicted >= 1);
        assert!(reg.resident_bytes() <= reg.budget_bytes());
        assert!(reg.get_or_load("a").unwrap().1, "a should have survived");
        assert!(matches!(
            reg.get_or_load("b"),
            Err(RegistryError::NotFound(_))
        ));
    }

    #[test]
    fn graph_larger_than_budget_is_refused() {
        let reg = Registry::new(MemoryBudget::from_bytes(64));
        let err = reg.load("g", "rmat:6:4:1").unwrap_err();
        assert!(matches!(err, RegistryError::OverBudget { .. }), "{err}");
        assert!(reg.is_empty());
    }

    #[test]
    fn reload_same_name_replaces_without_double_charge() {
        let reg = Registry::new(big_budget());
        reg.load("g", "rmat:6:4:1").unwrap();
        let before = reg.resident_bytes();
        reg.load("g", "rmat:6:4:2").unwrap();
        assert_eq!(reg.len(), 1);
        // Same generator shape: replacement stays in the same ballpark
        // instead of doubling.
        assert!(reg.resident_bytes() < before * 2);
    }

    #[test]
    fn evict_hook_sees_lru_victims_but_not_explicit_evicts() {
        let (a, _) = Registry::new(big_budget()).load("a", "rmat:7:4:1").unwrap();
        let per = a.bytes;
        let reg = Registry::new(MemoryBudget::from_bytes(per * 2 + per / 2));
        let seen = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&seen);
        reg.set_evict_hook(move |name| {
            sink.lock().unwrap().push(name.to_string());
        });
        reg.load("a", "rmat:7:4:1").unwrap();
        reg.load("b", "rmat:7:4:1").unwrap();
        reg.get_or_load("b").unwrap();
        // `a` is LRU; inserting `c` must evict it through the hook.
        reg.load("c", "rmat:7:4:1").unwrap();
        assert_eq!(seen.lock().unwrap().as_slice(), ["a".to_string()]);
        // Explicit evicts bypass the hook: callers know the name.
        assert!(reg.evict("b"));
        assert_eq!(seen.lock().unwrap().len(), 1);
        // Same-name replacement is not an eviction either.
        reg.load("c", "rmat:7:4:2").unwrap();
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn insert_prepared_rejects_oversized_graphs() {
        let reg = Registry::new(big_budget());
        let (g, _) = reg.load("g", "rmat:6:4:1").unwrap();
        let small = Registry::new(MemoryBudget::from_bytes(64));
        assert!(matches!(
            small.insert_prepared(g),
            Err(RegistryError::OverBudget { .. })
        ));
    }

    #[test]
    fn evict_reports_existence() {
        let reg = Registry::new(big_budget());
        reg.load("g", "rmat:6:4:1").unwrap();
        assert!(reg.evict("g"));
        assert!(!reg.evict("g"));
        assert_eq!(reg.resident_bytes(), 0);
    }
}
