//! The TCP daemon: acceptor, event loops, request dispatch.
//!
//! Architecture (DESIGN.md §11 / §14):
//!
//! - One acceptor thread multiplexes the listener through a
//!   `lotus_net::Poller`, enforces the connection quota, and hands
//!   admitted sockets round-robin to the event loops.
//! - A small set of event-loop threads (`--event-threads`) own the
//!   per-connection state machines: nonblocking read-accumulate →
//!   incremental frame parse → dispatch → in-order write-drain with
//!   partial-write resume. See `event_loop`.
//! - Fast admin requests (`Ping`, `Stats`, `EvictGraph`, `Drain`) run
//!   inline on the loop; everything else (`Count`, `PerVertex`,
//!   `KClique`, `Batch`, and `LoadGraph`, whose preprocessing can take
//!   seconds) passes through the bounded [`WorkerPool`]: a full queue
//!   yields an explicit `Overloaded` response (admission control),
//!   never a hang.
//! - Every work request carries a [`Deadline`] fixed at admission; jobs
//!   re-check it at dequeue and counting kernels poll it via their
//!   [`RunGuard`], so a `0 ms` deadline reliably returns
//!   `DeadlineExpired` without killing anything.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lotus_core::preprocess::build_lotus_graph;
use lotus_core::{
    kclique::count_kcliques, per_vertex::count_per_vertex, CountError, LotusConfig, LotusCounter,
};
use lotus_graph::UndirectedCsr;
use lotus_resilience::{isolate, CancelToken, Deadline, MemoryBudget, RunGuard, StopReason};
use lotus_telemetry::{counters, Counter, Span, SpanId};

use crate::event_loop::{self, NetConfig};
use crate::pool::WorkerPool;
use crate::proto::{
    ErrorKind, Request, Response, StatsReply, MAX_CLIQUE_K, MAX_PER_VERTEX_SPAN, NO_DEADLINE,
};
use crate::proto::LoopStat;
use crate::recovery::RecoveryReport;
use crate::registry::{PreparedGraph, Registry, RegistryError};
use crate::shards::{self, ShardStore};
use crate::store::{DurableStore, StoreError};

/// How often the checkpoint thread re-checks shutdown between sleeps.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (no port), e.g. `127.0.0.1`.
    pub bind: String,
    /// TCP port; `0` asks the OS for an ephemeral port (the bound port
    /// is in [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker threads; `0` means `rayon::current_num_threads()`.
    pub workers: usize,
    /// Bounded queue slots; `0` means `4 × workers`.
    pub queue_capacity: usize,
    /// Registry memory budget.
    pub budget: MemoryBudget,
    /// Graphs to load before accepting connections: `(name, spec)`.
    pub preload: Vec<(String, String)>,
    /// Durability directory; `None` runs fully in-memory (the previous
    /// behavior). With a data dir, startup recovers snapshots + journal
    /// and explicit registrations persist crash-safely (DESIGN.md §13).
    pub data_dir: Option<PathBuf>,
    /// How often the checkpoint thread compacts the journal and GCs
    /// orphan snapshots; `None` disables periodic checkpoints (one still
    /// runs at shutdown). Ignored without a data dir.
    pub snapshot_interval: Option<Duration>,
    /// Event-loop threads multiplexing connections; `0` picks a small
    /// default from the machine's parallelism (1–4).
    pub event_threads: usize,
    /// Connection quota: sockets accepted past this are answered with a
    /// best-effort `Overloaded` frame and closed. `0` means the default
    /// (4096).
    pub max_conns: usize,
    /// Idle / slow-loris timeout: a connection that makes no read
    /// progress for this long (and has nothing in flight) is evicted by
    /// the timer wheel. `Duration::ZERO` means the default (60 s).
    pub idle_timeout: Duration,
    /// Per-connection pipelining cap: the loop stops reading more
    /// frames from a connection once this many of its requests are in
    /// flight (backpressure, not an error). `0` means the default (64).
    pub max_inflight: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: "127.0.0.1".to_string(),
            port: 0,
            workers: 0,
            queue_capacity: 0,
            budget: MemoryBudget::from_bytes(512 << 20),
            preload: Vec::new(),
            data_dir: None,
            snapshot_interval: None,
            event_threads: 0,
            max_conns: 0,
            idle_timeout: Duration::ZERO,
            max_inflight: 0,
        }
    }
}

/// Always-on serving counters (plain relaxed atomics — *not* gated on
/// the `telemetry` feature, so `Stats` works in every build; armed
/// builds additionally mirror each increment into
/// `lotus_telemetry::counters`).
#[derive(Debug, Default)]
pub struct ServeStats {
    served: AtomicU64,
    overloaded: AtomicU64,
    deadline_expired: AtomicU64,
    panics: AtomicU64,
}

impl ServeStats {
    /// Requests answered successfully.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Requests refused by admission control.
    #[must_use]
    pub fn overloaded(&self) -> u64 {
        self.overloaded.load(Ordering::Relaxed)
    }

    /// Requests that expired their deadline.
    #[must_use]
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Worker panics confined by isolation.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    fn record_served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::RequestsServed);
    }

    fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::RequestsOverloaded);
    }

    fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::RequestsDeadlineExpired);
    }

    fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::PhasePanics);
    }
}

/// Always-on connection-level counters plus the drain fan-out: one
/// waker per poller (acceptor + each event loop), woken together so a
/// drain interrupts every blocked wait immediately.
#[derive(Debug, Default)]
pub(crate) struct NetRuntime {
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_open: AtomicU64,
    pub(crate) event_threads: AtomicU64,
    pub(crate) wakers: Mutex<Vec<Arc<lotus_net::Waker>>>,
    /// One row per event-loop thread, installed at loop startup; read
    /// by `Stats` so a hot loop is visible, not averaged away.
    pub(crate) loop_counters: Mutex<Vec<Arc<LoopCounters>>>,
}

/// A single event loop's always-on activity counters (the source of
/// [`LoopStat`] rows in the stats reply).
#[derive(Debug, Default)]
pub(crate) struct LoopCounters {
    pub(crate) readiness_events: AtomicU64,
    pub(crate) loop_wakeups: AtomicU64,
}

impl NetRuntime {
    pub(crate) fn add_waker(&self, waker: Arc<lotus_net::Waker>) {
        self.wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(waker);
    }

    /// Registers an event loop's counter row, in loop-index order.
    pub(crate) fn add_loop_counters(&self, counters: Arc<LoopCounters>) {
        self.loop_counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(counters);
    }

    fn loop_stats(&self) -> Vec<LoopStat> {
        self.loop_counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|c| LoopStat {
                readiness_events: c.readiness_events.load(Ordering::Relaxed),
                loop_wakeups: c.loop_wakeups.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn wake_all(&self) {
        for waker in self
            .wakers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            waker.wake();
        }
    }
}

/// Shared daemon state: registry, pool, stats, durability, shutdown.
pub struct ServerState {
    registry: Registry,
    pool: WorkerPool,
    stats: ServeStats,
    shutdown: CancelToken,
    store: Option<Arc<DurableStore>>,
    recovery: Option<RecoveryReport>,
    shards: ShardStore,
    pub(crate) net: NetRuntime,
}

impl ServerState {
    /// The graph registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shard-subgraph store (cluster tier, DESIGN.md §16).
    #[must_use]
    pub fn shards(&self) -> &ShardStore {
        &self.shards
    }

    /// The always-on serving counters.
    #[must_use]
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The durable store, when the daemon runs with a data dir.
    #[must_use]
    pub fn store(&self) -> Option<&Arc<DurableStore>> {
        self.store.as_ref()
    }

    /// What startup recovery did, when the daemon runs with a data dir.
    #[must_use]
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The shutdown token (cancelled once a drain begins).
    #[must_use]
    pub(crate) fn shutdown_token(&self) -> &CancelToken {
        &self.shutdown
    }

    /// The bounded worker pool.
    #[must_use]
    pub(crate) fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Starts a graceful drain: cancels the shutdown token and wakes
    /// every poller so the acceptor parks and the loops begin flushing
    /// in-flight responses. Idempotent.
    pub(crate) fn begin_drain(&self) {
        self.shutdown.cancel();
        self.net.wake_all();
    }

    /// Assembles the wire-level stats reply.
    #[must_use]
    pub fn stats_reply(&self) -> StatsReply {
        let (snapshot_writes, journal_appends, journal_replays, recovery_quarantined, recovery_ms) =
            self.store
                .as_ref()
                .map_or((0, 0, 0, 0, 0), |s| s.stat_values());
        StatsReply {
            graphs: self.registry.len() as u32,
            resident_bytes: self.registry.resident_bytes(),
            budget_bytes: self.registry.budget_bytes(),
            requests_served: self.stats.served(),
            overloaded: self.stats.overloaded(),
            deadline_expired: self.stats.deadline_expired(),
            cache_hits: self.registry.hits(),
            cache_misses: self.registry.misses(),
            panics: self.stats.panics() + self.pool.panics(),
            workers: self.pool.workers() as u32,
            queue_capacity: self.pool.capacity() as u32,
            snapshot_writes,
            journal_appends,
            journal_replays,
            recovery_quarantined,
            recovery_ms,
            conns_accepted: self.net.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.net.conns_open.load(Ordering::Relaxed),
            event_threads: self.net.event_threads.load(Ordering::Relaxed) as u32,
            loop_stats: self.net.loop_stats(),
        }
    }
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("registry", &self.registry)
            .field("pool", &self.pool)
            .finish()
    }
}

/// Handle to a running daemon.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    checkpoint: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the real ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared daemon state (registry + stats), for in-process tests
    /// and embedding.
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Requests shutdown (same path as a `Drain` request). Returns
    /// immediately; use [`ServerHandle::wait`] to join.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Blocks until the daemon exits (accept loop joined, connections
    /// closed, worker pool drained, final checkpoint written).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.checkpoint.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.begin_drain();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.checkpoint.take() {
            let _ = handle.join();
        }
    }
}

/// A daemon startup failure.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Bind(std::io::Error),
    /// Spawning the worker pool failed.
    Workers(std::io::Error),
    /// A `--preload` graph failed to load.
    Preload {
        /// Registry key that failed.
        name: String,
        /// The underlying registry error.
        error: RegistryError,
    },
    /// Opening the durable store (or running recovery) failed.
    Durability(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "binding listener: {e}"),
            ServeError::Workers(e) => write!(f, "spawning worker pool: {e}"),
            ServeError::Preload { name, error } => {
                write!(f, "preloading `{name}`: {error}")
            }
            ServeError::Durability(e) => write!(f, "opening durable store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Binds the listener, recovers durable state, preloads graphs, and
/// spawns the accept loop (plus the checkpoint thread when a data dir
/// is configured).
///
/// # Errors
/// Returns [`ServeError::Bind`] when the address cannot be bound,
/// [`ServeError::Durability`] when the data dir cannot be opened, and
/// [`ServeError::Preload`] when a preload graph fails to load.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle, ServeError> {
    let workers = if config.workers == 0 {
        rayon::current_num_threads()
    } else {
        config.workers
    };
    let queue_capacity = if config.queue_capacity == 0 {
        workers * 4
    } else {
        config.queue_capacity
    };

    // Durability first: recovery must finish before anything is served
    // so the registry starts from exactly the last durably acknowledged
    // state (damaged files quarantined, never fatal).
    let mut recovered_graphs = Vec::new();
    let mut store = None;
    let mut recovery = None;
    if let Some(data_dir) = &config.data_dir {
        let (opened, recovered_state) =
            DurableStore::open(data_dir).map_err(ServeError::Durability)?;
        store = Some(Arc::new(opened));
        recovery = Some(recovered_state.report);
        recovered_graphs = recovered_state.graphs;
    }

    let state = Arc::new(ServerState {
        registry: Registry::new(config.budget),
        pool: WorkerPool::new(workers, queue_capacity).map_err(ServeError::Workers)?,
        stats: ServeStats::default(),
        shutdown: CancelToken::new(),
        store,
        recovery,
        shards: ShardStore::new(),
        net: NetRuntime::default(),
    });
    if let Some(store) = &state.store {
        // LRU evictions happen inside Registry::load, invisible to
        // dispatch; the hook journals the durable ones so the manifest
        // never resurrects a graph the budget pushed out.
        let hook_store = Arc::clone(store);
        state.registry.set_evict_hook(move |name| {
            let _ = hook_store.record_evict(name);
        });
    }
    for recovered in recovered_graphs {
        // Snapshots hold the canonical edge list; preprocessing is
        // deterministic, so the rebuilt counts are bit-identical.
        let prepared = Arc::new(prepare_from_edges(&recovered.name, &recovered.edges));
        if let Err(error) = state.registry.insert_prepared(prepared) {
            return Err(ServeError::Preload {
                name: recovered.name,
                error,
            });
        }
    }
    for (name, spec) in &config.preload {
        let (prepared, _evicted) =
            state
                .registry
                .load(name, spec)
                .map_err(|error| ServeError::Preload {
                    name: name.clone(),
                    error,
                })?;
        if let Some(store) = &state.store {
            store
                .record_register(name, spec, &prepared.graph)
                .map_err(ServeError::Durability)?;
        }
    }
    let listener =
        TcpListener::bind((config.bind.as_str(), config.port)).map_err(ServeError::Bind)?;
    let addr = listener.local_addr().map_err(ServeError::Bind)?;
    listener.set_nonblocking(true).map_err(ServeError::Bind)?;

    let net_config = NetConfig::resolve(&config);
    state
        .net
        .event_threads
        .store(net_config.event_threads as u64, Ordering::Relaxed);
    let accept =
        event_loop::start(listener, Arc::clone(&state), net_config).map_err(ServeError::Bind)?;

    let mut checkpoint = None;
    if state.store.is_some() {
        let ckpt_state = Arc::clone(&state);
        let interval = config.snapshot_interval;
        checkpoint = std::thread::Builder::new()
            .name("lotus-serve-checkpoint".to_string())
            .spawn(move || checkpoint_loop(&ckpt_state, interval))
            .ok();
    }

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        checkpoint,
    })
}

/// Rebuilds a [`PreparedGraph`] from a recovered canonical edge list.
#[must_use]
pub fn prepare_from_edges(name: &str, edges: &lotus_graph::EdgeList) -> PreparedGraph {
    let graph = UndirectedCsr::from_canonical_edges(edges);
    let config = LotusConfig::auto(&graph);
    let lotus = build_lotus_graph(&graph, &config);
    let bytes = graph.topology_bytes() + lotus.topology_bytes();
    PreparedGraph {
        name: name.to_string(),
        graph,
        lotus,
        config,
        bytes,
    }
}

/// Periodically compacts the journal and GCs orphan snapshots; always
/// runs one final checkpoint at shutdown so a clean exit leaves a
/// single-record journal behind.
fn checkpoint_loop(state: &Arc<ServerState>, interval: Option<Duration>) {
    let mut last = Instant::now();
    while !state.shutdown.is_cancelled() {
        std::thread::sleep(POLL_INTERVAL);
        if let Some(every) = interval {
            if last.elapsed() >= every {
                if let Some(store) = &state.store {
                    let _ = store.checkpoint();
                }
                last = Instant::now();
            }
        }
    }
    if let Some(store) = &state.store {
        let _ = store.checkpoint();
    }
}

/// Handles a request cheap enough to run inline on an event-loop
/// thread: `Ping`, `Stats`, `EvictGraph`, `Drain`. Returns `None` for
/// everything that must go through the worker pool (`LoadGraph`'s
/// preprocessing can take seconds, so it is pool-bound too — unlike the
/// old thread-per-connection daemon, a stalled loop thread would stall
/// every connection it owns).
pub(crate) fn run_inline(request: &Request, state: &Arc<ServerState>) -> Option<Response> {
    match request {
        Request::Ping => Some(Response::Pong),
        Request::Stats => Some(Response::Stats(state.stats_reply())),
        Request::EvictGraph { name } => {
            // A coordinator fans EvictGraph to its shards, so the shard
            // store must honor it too — either resident copy counts.
            let shard_existed = state.shards.evict(name);
            let existed = state.registry.evict(name) || shard_existed;
            if let Some(store) = state.store() {
                if let Err(e) = store.record_evict(name) {
                    return Some(Response::error(
                        ErrorKind::DurabilityFailed,
                        format!("`{name}` evicted but the journal append failed: {e}"),
                    ));
                }
            }
            Some(Response::Evicted { existed })
        }
        Request::Drain => {
            state.begin_drain();
            Some(Response::Draining)
        }
        Request::ShardStat => {
            let (graphs, owned_vertices, entries, ghost_entries) = state.shards.stat();
            Some(Response::ShardStat {
                graphs,
                owned_vertices,
                entries,
                ghost_entries,
            })
        }
        Request::ShardJoin { .. } => Some(Response::error(
            ErrorKind::BadRequest,
            "ShardJoin is a coordinator request; this is a shard/serve daemon",
        )),
        _ => None,
    }
}

/// Runs a pool-bound request on a worker thread: panic-isolated, span-
/// wrapped, outcome-counted. The deadline was fixed at admission, so
/// queueing time counts against it — a `0 ms` deadline expires before
/// the job even dequeues.
pub(crate) fn run_pooled(
    request: &Request,
    deadline: Option<Deadline>,
    state: &Arc<ServerState>,
) -> Response {
    let _span = Span::enter(SpanId::ServeRequest);
    if let Request::LoadGraph { name, spec } = request {
        // Registry loads run their own isolation inside the kernels;
        // counting stats are not bumped for admin requests.
        return run_load_graph(name, spec, state);
    }
    if let Request::ShardLoad {
        name,
        spec,
        parts,
        index,
    } = request
    {
        // Placement, like LoadGraph, is admin work: the transient full
        // build can take seconds, so it is pool-bound but not counted
        // against the serving stats.
        return isolate(|| shards::run_shard_load(state.shards(), name, spec, *parts, *index))
            .unwrap_or_else(|panic| {
                state.stats.record_panic();
                Response::error(ErrorKind::WorkerPanic, panic.message)
            });
    }
    let response = isolate(|| execute_work(request, deadline, state)).unwrap_or_else(|panic| {
        state.stats.record_panic();
        Response::error(ErrorKind::WorkerPanic, panic.message)
    });
    record_outcome(&response, state);
    response
}

/// Records a refused admission and builds the `Overloaded` response.
pub(crate) fn overloaded_response(state: &Arc<ServerState>) -> Response {
    state.stats.record_overloaded();
    Response::error(ErrorKind::Overloaded, "request queue is full")
}

fn run_load_graph(name: &str, spec: &str, state: &Arc<ServerState>) -> Response {
    match state.registry.load(name, spec) {
        Ok((prepared, evicted)) => {
            // Persist only after the load succeeded; a durability
            // failure is reported (the graph still serves from RAM,
            // but the client must know it is not crash-safe).
            if let Some(store) = state.store() {
                if let Err(e) = store.record_register(name, spec, &prepared.graph) {
                    return Response::error(
                        ErrorKind::DurabilityFailed,
                        format!("`{name}` loaded but not persisted: {e}"),
                    );
                }
            }
            Response::Loaded {
                vertices: prepared.graph.num_vertices(),
                edges: prepared.graph.num_edges(),
                bytes: prepared.bytes,
                evicted,
            }
        }
        Err(e) => registry_error_response(&e),
    }
}

/// Bumps the served / deadline-expired stats for a completed work
/// response (batches count once, by their worst member).
fn record_outcome(response: &Response, state: &Arc<ServerState>) {
    let kind = match response {
        Response::Batch(items) => items.iter().find_map(|r| match r {
            Response::Error { kind, .. } => Some(*kind),
            _ => None,
        }),
        Response::Error { kind, .. } => Some(*kind),
        _ => None,
    };
    match kind {
        None => state.stats.record_served(),
        Some(ErrorKind::DeadlineExpired) => state.stats.record_deadline_expired(),
        Some(_) => {}
    }
}

pub(crate) fn request_deadline(request: &Request) -> Option<Deadline> {
    let ms = match request {
        Request::Count { deadline_ms, .. }
        | Request::PerVertex { deadline_ms, .. }
        | Request::KClique { deadline_ms, .. }
        | Request::ShardCount { deadline_ms, .. }
        | Request::ShardPerVertex { deadline_ms, .. } => *deadline_ms,
        Request::Batch(items) => items
            .iter()
            .filter_map(|item| match item {
                Request::Count { deadline_ms, .. }
                | Request::PerVertex { deadline_ms, .. }
                | Request::KClique { deadline_ms, .. } => Some(*deadline_ms),
                _ => None,
            })
            .min()
            .unwrap_or(NO_DEADLINE),
        _ => NO_DEADLINE,
    };
    (ms != NO_DEADLINE).then(|| Deadline::after(Duration::from_millis(ms)))
}

/// Executes a work request on a worker thread.
fn execute_work(
    request: &Request,
    deadline: Option<Deadline>,
    state: &Arc<ServerState>,
) -> Response {
    if deadline.is_some_and(|d| d.expired()) {
        return Response::error(
            ErrorKind::DeadlineExpired,
            "deadline expired before execution",
        );
    }
    match request {
        Request::Count { name, .. } => run_count(name, deadline, state),
        Request::PerVertex {
            name, start, end, ..
        } => run_per_vertex(name, *start, *end, deadline, state),
        Request::KClique { name, k, .. } => run_kclique(name, *k, deadline, state),
        Request::ShardCount { name, .. } => {
            shards::run_shard_count(state.shards(), name, deadline)
        }
        Request::ShardPerVertex {
            name, start, end, ..
        } => shards::run_shard_per_vertex(state.shards(), name, *start, *end, deadline),
        Request::Batch(items) => Response::Batch(
            items
                .iter()
                .map(|item| match item {
                    Request::Ping => Response::Pong,
                    Request::Stats => Response::Stats(state.stats_reply()),
                    Request::Count { .. } | Request::PerVertex { .. } | Request::KClique { .. } => {
                        execute_work(item, request_deadline(item), state)
                    }
                    _ => Response::error(
                        ErrorKind::BadRequest,
                        "admin requests are not allowed inside a batch",
                    ),
                })
                .collect(),
        ),
        _ => Response::error(ErrorKind::BadRequest, "not a work request"),
    }
}

fn run_count(name: &str, deadline: Option<Deadline>, state: &Arc<ServerState>) -> Response {
    let (prepared, cached) = match state.registry.get_or_load(name) {
        Ok(found) => found,
        Err(e) => return registry_error_response(&e),
    };
    let mut guard = RunGuard::unlimited();
    if let Some(d) = deadline {
        guard = guard.with_deadline(d);
    }
    let start = Instant::now();
    let counter = LotusCounter::new(prepared.config);
    match counter.count_prepared_guarded(&prepared.lotus, &guard) {
        Ok(result) => Response::Count {
            triangles: result.total(),
            cached,
            wall_micros: start.elapsed().as_micros() as u64,
        },
        Err(CountError::Interrupted { reason, .. }) => match reason {
            StopReason::DeadlineExpired => {
                Response::error(ErrorKind::DeadlineExpired, "deadline expired mid-count")
            }
            StopReason::Cancelled => Response::error(ErrorKind::Cancelled, "count cancelled"),
        },
        Err(CountError::PhasePanic { message, phase, .. }) => {
            state.stats.record_panic();
            Response::error(
                ErrorKind::WorkerPanic,
                format!("phase {phase:?} panicked: {message}"),
            )
        }
    }
}

fn run_per_vertex(
    name: &str,
    start: u32,
    end: u32,
    deadline: Option<Deadline>,
    state: &Arc<ServerState>,
) -> Response {
    let (prepared, _cached) = match state.registry.get_or_load(name) {
        Ok(found) => found,
        Err(e) => return registry_error_response(&e),
    };
    let n = prepared.graph.num_vertices();
    // (0, 0) means "from the start": the span cap still applies.
    let (start, end) = if start == 0 && end == 0 {
        (0, n.min(MAX_PER_VERTEX_SPAN))
    } else {
        (start, end.min(n))
    };
    if start > end {
        return Response::error(
            ErrorKind::BadRequest,
            format!("range start {start} is past end {end}"),
        );
    }
    if end - start > MAX_PER_VERTEX_SPAN {
        return Response::error(
            ErrorKind::BadRequest,
            format!(
                "range of {} vertices exceeds the {MAX_PER_VERTEX_SPAN}-vertex cap",
                end - start
            ),
        );
    }
    if deadline.is_some_and(|d| d.expired()) {
        return Response::error(
            ErrorKind::DeadlineExpired,
            "deadline expired before counting",
        );
    }
    let counts = count_per_vertex(&prepared.lotus);
    Response::PerVertex {
        start,
        counts: counts[start as usize..end as usize].to_vec(),
    }
}

fn run_kclique(
    name: &str,
    k: u32,
    deadline: Option<Deadline>,
    state: &Arc<ServerState>,
) -> Response {
    if k == 0 || k > MAX_CLIQUE_K {
        return Response::error(
            ErrorKind::BadRequest,
            format!("clique size {k} outside 1..={MAX_CLIQUE_K}"),
        );
    }
    let (prepared, _cached) = match state.registry.get_or_load(name) {
        Ok(found) => found,
        Err(e) => return registry_error_response(&e),
    };
    if deadline.is_some_and(|d| d.expired()) {
        return Response::error(
            ErrorKind::DeadlineExpired,
            "deadline expired before counting",
        );
    }
    Response::KClique {
        k,
        cliques: count_kcliques(&prepared.graph, k as usize),
    }
}

fn registry_error_response(e: &RegistryError) -> Response {
    let kind = match e {
        RegistryError::NotFound(_) => ErrorKind::NotFound,
        RegistryError::BadSpec(_) | RegistryError::OverBudget { .. } => ErrorKind::BadRequest,
    };
    Response::error(kind, e.to_string())
}
