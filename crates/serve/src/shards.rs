//! Shard-side execution for the cluster tier (DESIGN.md §16).
//!
//! A shard daemon is an ordinary `lotus-serve` process that additionally
//! answers the `Shard*` protocol messages: `ShardLoad` builds the graph
//! from its deterministic spec, extracts this shard's edge-balanced
//! partition (owned forward columns plus ghost columns, see
//! [`lotus_graph::shard`]), and retains **only** the subgraph;
//! `ShardCount` / `ShardPerVertex` answer apex-restricted queries whose
//! sums across the fleet are exact; `ShardStat` reports occupancy.
//!
//! The shard store is deliberately separate from the [`crate::registry`]:
//! shard subgraphs are placed by the coordinator, not demand-loaded, and
//! they are not budget-evicted behind the coordinator's back (the
//! coordinator's shard map must stay authoritative about placement).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use lotus_graph::partition::{edge_balanced, VertexRange};
use lotus_graph::ShardSubgraph;
use lotus_resilience::Deadline;
use lotus_telemetry::sync::{TracedGuard, TracedMutex};

use crate::proto::{ErrorKind, Response, MAX_PER_VERTEX_SPAN};
use crate::registry::{build_graph, GraphSpec};

/// Most shards a single graph may be split across; bounds the transient
/// planner work a hostile `ShardLoad` can request.
pub const MAX_SHARD_PARTS: u32 = 4096;

/// One resident shard subgraph plus the placement that produced it.
#[derive(Debug)]
pub struct StoredShard {
    /// Deterministic spec the graph was built from.
    pub spec: String,
    /// Total shards the graph is split across.
    pub parts: u32,
    /// This daemon's partition index.
    pub index: u32,
    /// The extracted subgraph (owned + ghost forward columns).
    pub subgraph: ShardSubgraph,
}

/// The shard daemon's store of extracted subgraphs, keyed by graph name.
#[derive(Debug)]
pub struct ShardStore {
    inner: TracedMutex<HashMap<String, Arc<StoredShard>>>,
}

impl Default for ShardStore {
    fn default() -> Self {
        ShardStore::new()
    }
}

impl ShardStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> ShardStore {
        ShardStore {
            inner: TracedMutex::new("serve.shards.inner", HashMap::new()),
        }
    }

    fn lock(&self) -> TracedGuard<'_, HashMap<String, Arc<StoredShard>>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Resident shard subgraphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Looks up a resident shard subgraph.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<StoredShard>> {
        self.lock().get(name).cloned()
    }

    /// Inserts (or replaces) a shard subgraph under `name`.
    pub fn insert(&self, name: &str, shard: StoredShard) {
        self.lock().insert(name.to_string(), Arc::new(shard));
    }

    /// Drops the shard subgraph stored under `name`.
    pub fn evict(&self, name: &str) -> bool {
        self.lock().remove(name).is_some()
    }

    /// Occupancy summary for `ShardStat`: `(graphs, owned_vertices,
    /// entries, ghost_entries)` summed over resident subgraphs.
    #[must_use]
    pub fn stat(&self) -> (u32, u64, u64, u64) {
        let map = self.lock();
        let mut owned = 0u64;
        let mut entries = 0u64;
        let mut ghosts = 0u64;
        for shard in map.values() {
            owned += u64::from(shard.subgraph.owned().len());
            entries += shard.subgraph.num_entries();
            ghosts += shard.subgraph.ghost_entries();
        }
        (map.len() as u32, owned, entries, ghosts)
    }
}

/// Executes `ShardLoad`: builds the graph from `spec`, extracts
/// edge-balanced partition `index` of `parts` over the forward
/// orientation, and stores the subgraph under `name`. The full graph is
/// transient; only the subgraph stays resident.
pub(crate) fn run_shard_load(
    store: &ShardStore,
    name: &str,
    spec: &str,
    parts: u32,
    index: u32,
) -> Response {
    if parts == 0 || parts > MAX_SHARD_PARTS {
        return Response::error(
            ErrorKind::BadRequest,
            format!("shard parts {parts} outside 1..={MAX_SHARD_PARTS}"),
        );
    }
    if index >= parts {
        return Response::error(
            ErrorKind::BadRequest,
            format!("shard index {index} out of range for {parts} parts"),
        );
    }
    let parsed = match GraphSpec::parse(spec) {
        Ok(parsed) => parsed,
        Err(e) => return Response::error(ErrorKind::BadRequest, e),
    };
    let graph = match build_graph(&parsed) {
        Ok(graph) => graph,
        Err(e) => return Response::error(ErrorKind::BadRequest, e.to_string()),
    };
    let forward = graph.forward_graph();
    let ranges = edge_balanced(&forward, parts as usize);
    let subgraph = ShardSubgraph::extract(&forward, ranges[index as usize]);
    let reply = Response::Loaded {
        vertices: subgraph.owned().len(),
        edges: subgraph.num_entries(),
        bytes: subgraph.topology_bytes(),
        evicted: 0,
    };
    store.insert(
        name,
        StoredShard {
            spec: spec.to_string(),
            parts,
            index,
            subgraph,
        },
    );
    reply
}

/// Executes `ShardCount`: apex-restricted triangle count of the stored
/// subgraph (exact when summed across all `parts` shards).
pub(crate) fn run_shard_count(
    store: &ShardStore,
    name: &str,
    deadline: Option<Deadline>,
) -> Response {
    let Some(shard) = store.get(name) else {
        return shard_not_found(name);
    };
    if deadline.is_some_and(|d| d.expired()) {
        return Response::error(
            ErrorKind::DeadlineExpired,
            "deadline expired before counting",
        );
    }
    let start = Instant::now();
    let triangles = shard.subgraph.count_owned_triangles();
    Response::Count {
        triangles,
        cached: true,
        wall_micros: start.elapsed().as_micros() as u64,
    }
}

/// Executes `ShardPerVertex`: this shard's contribution to per-vertex
/// counts over `[start, end)` (element-wise sums across shards are
/// exact). The same span cap as single-node `PerVertex` applies.
pub(crate) fn run_shard_per_vertex(
    store: &ShardStore,
    name: &str,
    start: u32,
    end: u32,
    deadline: Option<Deadline>,
) -> Response {
    let Some(shard) = store.get(name) else {
        return shard_not_found(name);
    };
    let n = shard.subgraph.num_vertices();
    let (start, end) = if start == 0 && end == 0 {
        (0, n.min(MAX_PER_VERTEX_SPAN))
    } else {
        (start, end.min(n))
    };
    if start > end {
        return Response::error(
            ErrorKind::BadRequest,
            format!("range start {start} is past end {end}"),
        );
    }
    if end - start > MAX_PER_VERTEX_SPAN {
        return Response::error(
            ErrorKind::BadRequest,
            format!(
                "range of {} vertices exceeds the {MAX_PER_VERTEX_SPAN}-vertex cap",
                end - start
            ),
        );
    }
    if deadline.is_some_and(|d| d.expired()) {
        return Response::error(
            ErrorKind::DeadlineExpired,
            "deadline expired before counting",
        );
    }
    let counts = shard
        .subgraph
        .per_vertex_owned(VertexRange { start, end });
    Response::PerVertex { start, counts }
}

fn shard_not_found(name: &str) -> Response {
    Response::error(
        ErrorKind::NotFound,
        format!("no shard subgraph stored under `{name}`"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::NO_DEADLINE;
    use std::time::Duration;

    fn deadline(ms: u64) -> Option<Deadline> {
        (ms != NO_DEADLINE).then(|| Deadline::after(Duration::from_millis(ms)))
    }

    #[test]
    fn shard_loads_sum_to_single_node_count() {
        let spec = "rmat:9:8:7";
        let store = ShardStore::new();
        // Single-node reference: one shard holding the whole graph.
        let whole = run_shard_load(&store, "whole", spec, 1, 0);
        assert!(matches!(whole, Response::Loaded { .. }), "{whole:?}");
        let Response::Count { triangles: expected, .. } =
            run_shard_count(&store, "whole", deadline(NO_DEADLINE))
        else {
            panic!("reference count failed");
        };
        let mut total = 0u64;
        for index in 0..3 {
            let name = format!("part{index}");
            let loaded = run_shard_load(&store, &name, spec, 3, index);
            assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
            let Response::Count { triangles, .. } =
                run_shard_count(&store, &name, deadline(NO_DEADLINE))
            else {
                panic!("shard count failed");
            };
            total += triangles;
        }
        assert_eq!(total, expected);
        let (graphs, owned, entries, _ghosts) = store.stat();
        assert_eq!(graphs, 4);
        assert!(owned > 0 && entries > 0);
    }

    #[test]
    fn shard_per_vertex_sums_to_single_node() {
        let spec = "er:400:2400:5";
        let store = ShardStore::new();
        run_shard_load(&store, "whole", spec, 1, 0);
        let Response::PerVertex { counts: expected, .. } =
            run_shard_per_vertex(&store, "whole", 0, 400, deadline(NO_DEADLINE))
        else {
            panic!("reference per-vertex failed");
        };
        let mut summed = vec![0u64; expected.len()];
        for index in 0..4 {
            let name = format!("p{index}");
            run_shard_load(&store, &name, spec, 4, index);
            let Response::PerVertex { counts, .. } =
                run_shard_per_vertex(&store, &name, 0, 400, deadline(NO_DEADLINE))
            else {
                panic!("shard per-vertex failed");
            };
            for (acc, c) in summed.iter_mut().zip(counts) {
                *acc += c;
            }
        }
        assert_eq!(summed, expected);
    }

    #[test]
    fn bad_placements_and_lookups_are_typed() {
        let store = ShardStore::new();
        assert!(matches!(
            run_shard_load(&store, "g", "rmat:6:8:1", 0, 0),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            run_shard_load(&store, "g", "rmat:6:8:1", 2, 2),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            run_shard_load(&store, "g", "not-a-spec", 2, 0),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            run_shard_count(&store, "missing", deadline(NO_DEADLINE)),
            Response::Error {
                kind: ErrorKind::NotFound,
                ..
            }
        ));
        run_shard_load(&store, "g", "rmat:6:8:1", 2, 0);
        assert!(matches!(
            run_shard_count(&store, "g", deadline(0)),
            Response::Error {
                kind: ErrorKind::DeadlineExpired,
                ..
            }
        ));
        assert!(store.evict("g"));
        assert!(!store.evict("g"));
    }
}
