//! The durable snapshot store: crash-safe persistence for the registry.
//!
//! Explicitly registered graphs (a `LoadGraph` request or `--preload`)
//! are persisted as CRC-framed LOTG v2 snapshots under
//! `<data_dir>/snapshots/`, and the registry's logical state is
//! journaled in `<data_dir>/journal.lotj` (see [`crate::journal`]). The
//! write protocol makes each step crash-atomic:
//!
//! 1. snapshot → write to `<name>.lotg.tmp`, `fsync`, atomic rename to
//!    `<name>.lotg`, `fsync` the directory;
//! 2. only then append + sync the `Register` journal record.
//!
//! A crash between 1 and 2 leaves an orphan snapshot (garbage-collected
//! at the next checkpoint); a crash inside 1 leaves a `*.tmp` torn file
//! (quarantined at recovery); a crash inside 2 leaves a torn journal
//! tail (discarded at recovery). In every case the journal never
//! acknowledges a graph whose snapshot is not fully durable.
//!
//! Spec-shaped cache builds (`Count { name: "rmat:9:8:7" }` without a
//! prior `LoadGraph`) are *not* persisted — a deliberate non-guarantee,
//! since they are cheap to rebuild and would churn the journal.
//!
//! Locking protocol: the durable-map mutex doubles as the *commit
//! lock*. Every mutation (`record_register`, `record_evict`,
//! `checkpoint`) holds it for its full sequence of snapshot write,
//! journal append, and map update, so a checkpoint can never observe
//! (and GC away) a half-committed registration, and its temp-file
//! sweep is serialized against in-flight snapshot writes. Lock order
//! is always durable → journal; nothing acquires them the other way.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

use lotus_telemetry::sync::{TracedGuard, TracedMutex};

use lotus_graph::io::write_binary;
use lotus_graph::{GraphError, UndirectedCsr};
use lotus_resilience::fault_point;
use lotus_telemetry::{counters, Counter};

use crate::journal::{self, Journal, JournalRecord};
use crate::recovery::{self, RecoveredState};

/// File suffix of a complete snapshot.
pub const SNAPSHOT_SUFFIX: &str = ".lotg";
/// File suffix of an in-progress snapshot write.
pub const TEMP_SUFFIX: &str = ".lotg.tmp";

/// A durability-layer failure, tagged with the step that failed.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure during `op` (snapshot write, fsync, rename,
    /// journal append...).
    Io {
        /// Which durability step failed.
        op: &'static str,
        /// The underlying error.
        source: io::Error,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "durability {op} failed: {source}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
        }
    }
}

fn io_err(op: &'static str) -> impl FnOnce(io::Error) -> StoreError {
    move |source| StoreError::Io { op, source }
}

/// Always-on durability counters, mirrored into telemetry when that
/// feature is armed (same pattern as `ServeStats`).
#[derive(Debug, Default)]
pub struct DurableStats {
    /// Snapshots durably written.
    pub snapshot_writes: AtomicU64,
    /// Journal records appended and synced.
    pub journal_appends: AtomicU64,
    /// Journal records replayed at startup.
    pub journal_replays: AtomicU64,
    /// Files quarantined by startup recovery.
    pub recovery_quarantined: AtomicU64,
    /// Milliseconds the startup recovery pass took.
    pub recovery_ms: AtomicU64,
}

impl DurableStats {
    fn get(v: &AtomicU64) -> u64 {
        v.load(Ordering::Relaxed)
    }
}

/// The durable store: owns the journal, the snapshot directory, and the
/// durable `name → spec` manifest. All methods are callable from any
/// worker thread.
#[derive(Debug)]
pub struct DurableStore {
    data_dir: PathBuf,
    journal: TracedMutex<Journal>,
    durable: TracedMutex<HashMap<String, String>>,
    stats: DurableStats,
}

impl DurableStore {
    /// Opens (creating directories as needed) the store under
    /// `data_dir`, running full recovery first: journal replay, snapshot
    /// CRC verification, quarantine of damaged files, compaction of a
    /// torn journal. Returns the store plus the recovered graphs for the
    /// caller to re-prepare.
    ///
    /// # Errors
    /// Environmental I/O failures only; damaged durability files are
    /// quarantined, never fatal.
    pub fn open(data_dir: impl AsRef<Path>) -> Result<(DurableStore, RecoveredState), StoreError> {
        let data_dir = data_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(data_dir.join("snapshots")).map_err(io_err("data dir create"))?;
        // Freshly created directories need their parents synced too, or
        // a power loss can drop the whole tree (and with it the journal
        // and snapshots) from the namespace.
        journal::sync_parent_dir(&data_dir.join("snapshots")).map_err(io_err("data dir fsync"))?;
        journal::sync_parent_dir(&data_dir).map_err(io_err("data dir fsync"))?;
        let recovered = recovery::recover(&data_dir, false).map_err(io_err("recovery"))?;
        let journal =
            Journal::open(data_dir.join("journal.lotj")).map_err(io_err("journal open"))?;
        let stats = DurableStats::default();
        stats
            .journal_replays
            .store(recovered.report.journal_records, Ordering::Relaxed);
        stats
            .recovery_quarantined
            .store(recovered.report.quarantined.len() as u64, Ordering::Relaxed);
        stats
            .recovery_ms
            .store(recovered.report.recovery_ms, Ordering::Relaxed);
        counters::add(Counter::JournalReplays, recovered.report.journal_records);
        counters::add(
            Counter::RecoveryQuarantined,
            recovered.report.quarantined.len() as u64,
        );
        let store = DurableStore {
            data_dir,
            journal: TracedMutex::new("serve.store.journal", journal),
            durable: TracedMutex::new(
                "serve.store.durable",
                recovered.entries.iter().cloned().collect(),
            ),
            stats,
        };
        Ok((store, recovered))
    }

    /// The directory this store persists under.
    #[must_use]
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The always-on durability counters.
    #[must_use]
    pub fn stats(&self) -> &DurableStats {
        &self.stats
    }

    /// Snapshot counter values as plain numbers, for `Stats` replies.
    #[must_use]
    pub fn stat_values(&self) -> (u64, u64, u64, u64, u64) {
        (
            DurableStats::get(&self.stats.snapshot_writes),
            DurableStats::get(&self.stats.journal_appends),
            DurableStats::get(&self.stats.journal_replays),
            DurableStats::get(&self.stats.recovery_quarantined),
            DurableStats::get(&self.stats.recovery_ms),
        )
    }

    /// Names currently in the durable manifest, sorted.
    #[must_use]
    pub fn durable_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.lock_durable().keys().cloned().collect();
        names.sort();
        names
    }

    /// True when `name` is durably registered.
    #[must_use]
    pub fn is_durable(&self, name: &str) -> bool {
        self.lock_durable().contains_key(name)
    }

    /// Persists an explicit registration: snapshot first (temp, fsync,
    /// rename, dir fsync), then the synced `Register` journal record.
    /// When this returns `Ok`, a crash at any later point recovers the
    /// graph bit-identically. The commit lock is held across all three
    /// steps so a concurrent checkpoint sees the registration either
    /// not at all or fully committed — never a snapshot without its
    /// manifest entry (which GC would delete as an orphan).
    ///
    /// # Errors
    /// [`StoreError::Io`] naming the failed step. A failed snapshot
    /// write deliberately leaves its `*.tmp` behind — the same artifact
    /// a crash would leave — for recovery to quarantine.
    pub fn record_register(
        &self,
        name: &str,
        spec: &str,
        graph: &UndirectedCsr,
    ) -> Result<(), StoreError> {
        let mut durable = self.lock_durable();
        self.write_snapshot(name, graph)?;
        self.append(&JournalRecord::Register {
            name: name.to_string(),
            spec: spec.to_string(),
        })?;
        durable.insert(name.to_string(), spec.to_string());
        Ok(())
    }

    /// Journals an eviction and drops the snapshot. Called for explicit
    /// `EvictGraph` requests and for LRU evictions of durable graphs.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the journal append fails; the snapshot file
    /// removal is best-effort (checkpoint GC sweeps leftovers).
    pub fn record_evict(&self, name: &str) -> Result<(), StoreError> {
        let mut durable = self.lock_durable();
        let Some(spec) = durable.remove(name) else {
            return Ok(());
        };
        if let Err(e) = self.append(&JournalRecord::Evict {
            name: name.to_string(),
        }) {
            // The journal still says registered; keep the map in sync
            // so a later checkpoint doesn't silently drop the graph.
            durable.insert(name.to_string(), spec);
            return Err(e);
        }
        let _ = std::fs::remove_file(self.snapshot_path(name));
        Ok(())
    }

    /// Compacts the journal to a single `Checkpoint` of the current
    /// manifest and garbage-collects snapshots (and stray temp files)
    /// no longer referenced. Run periodically by the daemon.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the rewrite or reopen fails.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        // Commit lock first (durable → journal order), held through the
        // GC sweep: no registration can be mid-flight while we clone
        // the manifest, rewrite the journal, or delete files — so the
        // sweep never eats a temp file an active write_snapshot owns,
        // and never GCs a snapshot whose Register record is about to
        // land. The journal lock is additionally held across rewrite +
        // reopen so no append lands on the unlinked old file.
        let durable = self.lock_durable();
        let mut journal = self.journal.lock().unwrap_or_else(PoisonError::into_inner);
        let mut entries: Vec<(String, String)> = durable
            .iter()
            .map(|(n, s)| (n.clone(), s.clone()))
            .collect();
        entries.sort();
        journal::rewrite(journal.path(), &entries).map_err(io_err("journal rewrite"))?;
        let reopened = Journal::open(journal.path()).map_err(io_err("journal reopen"))?;
        *journal = reopened;
        self.stats.journal_appends.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::JournalAppends);

        for (name, path) in recovery::snapshots_on_disk(&self.data_dir) {
            if !durable.contains_key(&name) {
                let _ = std::fs::remove_file(path);
            }
        }
        if let Ok(dir) = std::fs::read_dir(snapshot_dir(&self.data_dir)) {
            for entry in dir.flatten() {
                let path = entry.path();
                if path.to_string_lossy().ends_with(TEMP_SUFFIX) {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(())
    }

    /// Full path of `name`'s snapshot file.
    #[must_use]
    pub fn snapshot_path(&self, name: &str) -> PathBuf {
        snapshot_dir(&self.data_dir).join(snapshot_file_name(name))
    }

    fn lock_durable(&self) -> TracedGuard<'_, HashMap<String, String>> {
        self.durable.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn append(&self, record: &JournalRecord) -> Result<(), StoreError> {
        self.journal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .append(record)
            .map_err(io_err("journal append"))?;
        self.stats.journal_appends.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::JournalAppends);
        Ok(())
    }

    fn write_snapshot(&self, name: &str, graph: &UndirectedCsr) -> Result<(), StoreError> {
        let final_path = self.snapshot_path(name);
        let tmp_path =
            snapshot_dir(&self.data_dir).join(format!("{}{TEMP_SUFFIX}", enc_name(name)));
        let edges = graph.to_canonical_edges();
        let mut bytes = Vec::new();
        write_binary(&edges, &mut bytes).map_err(|e| StoreError::Io {
            op: "snapshot encode",
            source: match e {
                GraphError::Io(io) => io,
                other => io::Error::other(other.to_string()),
            },
        })?;

        // Chunked writes with a fault point per chunk: an injected error
        // (or a real crash) leaves a genuinely partial temp file behind,
        // exactly the artifact recovery must quarantine — so no cleanup
        // on the error paths below.
        let mut file = File::create(&tmp_path).map_err(io_err("snapshot create"))?;
        for chunk in bytes.chunks(4096) {
            file.write_all(chunk).map_err(io_err("snapshot write"))?;
            fault_point!("serve.snapshot.write").map_err(io_err("snapshot write"))?;
        }
        fault_point!("serve.snapshot.fsync").map_err(io_err("snapshot fsync"))?;
        file.sync_data().map_err(io_err("snapshot fsync"))?;
        drop(file);
        fault_point!("serve.snapshot.rename").map_err(io_err("snapshot rename"))?;
        std::fs::rename(&tmp_path, &final_path).map_err(io_err("snapshot rename"))?;
        journal::sync_parent_dir(&final_path).map_err(io_err("snapshot dir fsync"))?;
        self.stats.snapshot_writes.fetch_add(1, Ordering::Relaxed);
        counters::incr(Counter::SnapshotWrites);
        Ok(())
    }
}

/// The snapshot directory under a data dir.
#[must_use]
pub fn snapshot_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("snapshots")
}

/// The file name a graph name persists under.
#[must_use]
pub fn snapshot_file_name(name: &str) -> String {
    format!("{}{SNAPSHOT_SUFFIX}", enc_name(name))
}

/// Percent-encodes a registry name into a safe file stem: bytes outside
/// `[A-Za-z0-9._-]` become `%XX` (so `rmat:9:8:7` → `rmat%3A9%3A8%3A7`).
#[must_use]
pub fn enc_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-') {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Inverse of [`enc_name`]; malformed escapes decode as literal bytes.
#[must_use]
pub fn dec_name(stem: &str) -> String {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(hi), Some(lo)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((hi * 16 + lo) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotus_gen::Rmat;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lotus-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn name_encoding_round_trips() {
        for name in [
            "plain",
            "rmat:9:8:7",
            "er:100:400:1",
            "path:data/web.lotg",
            "a b%c",
        ] {
            let enc = enc_name(name);
            assert!(
                enc.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'%')),
                "{enc}"
            );
            assert_eq!(dec_name(&enc), name);
        }
        // Malformed escapes survive as literals instead of panicking.
        assert_eq!(dec_name("x%ZZy"), "x%ZZy");
        assert_eq!(dec_name("tail%"), "tail%");
    }

    #[test]
    fn register_persists_and_reopen_recovers() {
        let dir = tmp_dir("reopen");
        let graph = Rmat::new(6, 4).generate(1);
        {
            let (store, state) = DurableStore::open(&dir).unwrap();
            assert!(state.graphs.is_empty());
            store.record_register("g", "rmat:6:4:1", &graph).unwrap();
            assert!(store.is_durable("g"));
            let (snaps, appends, ..) = store.stat_values();
            assert_eq!((snaps, appends), (1, 1));
        }
        let (store, state) = DurableStore::open(&dir).unwrap();
        assert_eq!(state.graphs.len(), 1);
        assert_eq!(state.graphs[0].edges, graph.to_canonical_edges());
        assert_eq!(store.durable_names(), vec!["g".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_removes_from_manifest_and_disk() {
        let dir = tmp_dir("evict");
        let graph = Rmat::new(6, 4).generate(1);
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.record_register("g", "rmat:6:4:1", &graph).unwrap();
        let snap = store.snapshot_path("g");
        assert!(snap.exists());
        store.record_evict("g").unwrap();
        assert!(!store.is_durable("g"));
        assert!(!snap.exists());
        // Evicting a non-durable name is a no-op, not a journal record.
        let (_, appends_before, ..) = store.stat_values();
        store.record_evict("never-registered").unwrap();
        let (_, appends_after, ..) = store.stat_values();
        assert_eq!(appends_before, appends_after);
        drop(store);
        let (_, state) = DurableStore::open(&dir).unwrap();
        assert!(state.graphs.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_never_loses_concurrent_registrations() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let dir = tmp_dir("race");
        let graph = Rmat::new(6, 4).generate(1);
        let store = Arc::new(DurableStore::open(&dir).unwrap().0);
        let stop = Arc::new(AtomicBool::new(false));
        // Checkpoint as fast as possible while registrations stream in:
        // every acked registration must survive the reopen, and no
        // checkpoint GC may delete an in-flight temp file (which would
        // fail the registration's rename with NotFound).
        let ckpt = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store.checkpoint().unwrap();
                }
            })
        };
        for i in 0..32 {
            store
                .record_register(&format!("g{i}"), "rmat:6:4:1", &graph)
                .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        ckpt.join().unwrap();
        drop(store);

        let (store, state) = DurableStore::open(&dir).unwrap();
        assert!(
            state.report.quarantined.is_empty(),
            "no acked registration may be lost or torn: {:?}",
            state.report.quarantined
        );
        assert_eq!(state.graphs.len(), 32);
        assert_eq!(store.durable_names().len(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_collects_orphans() {
        let dir = tmp_dir("ckpt");
        let graph = Rmat::new(6, 4).generate(1);
        let (store, _) = DurableStore::open(&dir).unwrap();
        store.record_register("a", "rmat:6:4:1", &graph).unwrap();
        store.record_register("b", "rmat:6:4:2", &graph).unwrap();
        store.record_evict("a").unwrap();
        // Plant an orphan snapshot (crash between snapshot and journal
        // record) and a stray temp file.
        std::fs::write(snapshot_dir(&dir).join("orphan.lotg"), b"junk").unwrap();
        std::fs::write(snapshot_dir(&dir).join("stray.lotg.tmp"), b"junk").unwrap();
        store.checkpoint().unwrap();
        assert!(!snapshot_dir(&dir).join("orphan.lotg").exists());
        assert!(!snapshot_dir(&dir).join("stray.lotg.tmp").exists());
        let readout = journal::read_journal(dir.join("journal.lotj")).unwrap();
        assert_eq!(readout.records.len(), 1, "compacted to one checkpoint");
        // Appends after a checkpoint land in the new file.
        store.record_register("c", "rmat:6:4:3", &graph).unwrap();
        drop(store);
        let (store, state) = DurableStore::open(&dir).unwrap();
        let mut names: Vec<&str> = state.graphs.iter().map(|g| g.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(
            store.durable_names(),
            vec!["b".to_string(), "c".to_string()]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
