//! A hashed timer wheel for connection timeouts.
//!
//! The event loop needs thousands of concurrently armed idle /
//! slow-loris timeouts with O(1) arm and cancel — a sorted structure
//! per timeout would cost a log factor on the hottest path (every read
//! re-arms the timer). The wheel hashes each deadline into one of
//! [`TimerWheel::slots`] fixed-width buckets; arming is a push, firing
//! is draining the buckets the cursor sweeps past, and cancellation is
//! *lazy*: entries carry a generation number and the caller discards
//! fired entries whose generation no longer matches the connection
//! (re-arming bumps the generation, so a stale entry can never evict a
//! live connection).

use std::time::{Duration, Instant};

/// One armed timeout: fires for `(token, gen)` once `rounds` full
/// cursor revolutions have passed its slot.
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    gen: u64,
    rounds: u32,
}

/// The wheel. Single-owner (one per event-loop thread), no locking.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    cursor: usize,
    /// The instant the slot under the cursor began.
    cursor_start: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `granularity` wide. Deadlines
    /// round *up* to the next slot boundary, so a timeout never fires
    /// early; it may fire up to one granularity late.
    #[must_use]
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> TimerWheel {
        let slots = slots.max(2);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity: granularity.max(Duration::from_millis(1)),
            cursor: 0,
            cursor_start: now,
        }
    }

    /// Arms a timeout for `(token, gen)` to fire `after` from `now`.
    /// Re-arming is just arming again with a bumped `gen` — the old
    /// entry goes stale and is discarded when its slot fires.
    pub fn arm(&mut self, now: Instant, after: Duration, token: u64, gen: u64) {
        let elapsed_in_slot = now.saturating_duration_since(self.cursor_start);
        let total = elapsed_in_slot + after;
        // Round up: firing early would evict a connection that still
        // has granularity-remainder time left.
        let ticks = (total.as_nanos().div_ceil(self.granularity.as_nanos())).max(1) as u64;
        let slot = (self.cursor as u64 + ticks) % self.slots.len() as u64;
        let rounds = (ticks / self.slots.len() as u64) as u32;
        self.slots[slot as usize].push(Entry { token, gen, rounds });
    }

    /// Sweeps the cursor forward to `now`, appending every fired
    /// `(token, gen)` to `fired`. The caller matches each against the
    /// connection's current generation and ignores stale pairs.
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<(u64, u64)>) {
        while now.saturating_duration_since(self.cursor_start) >= self.granularity {
            self.cursor_start += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let slot = &mut self.slots[self.cursor];
            slot.retain_mut(|entry| {
                if entry.rounds == 0 {
                    fired.push((entry.token, entry.gen));
                    false
                } else {
                    entry.rounds -= 1;
                    true
                }
            });
        }
    }

    /// Time until the next slot holding any entry fires, or `None` when
    /// the wheel is empty — the event loop's wait timeout.
    #[must_use]
    pub fn next_deadline(&self, now: Instant) -> Option<Duration> {
        let len = self.slots.len();
        let mut nearest: Option<usize> = None;
        for ahead in 1..=len {
            let slot = (self.cursor + ahead) % len;
            if !self.slots[slot].is_empty() {
                nearest = Some(ahead);
                break;
            }
        }
        // Entries with rounds > 0 in the nearest slot still bound the
        // wait usefully: waking at their slot costs one spurious sweep.
        let ahead = nearest?;
        let elapsed_in_slot = now.saturating_duration_since(self.cursor_start);
        let target = self.granularity * ahead as u32;
        Some(
            target
                .saturating_sub(elapsed_in_slot)
                .max(Duration::from_millis(1)),
        )
    }

    /// Total armed entries (live and stale), for tests and debugging.
    #[must_use]
    pub fn armed(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline_never_before() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, start);
        wheel.arm(start, Duration::from_millis(25), 1, 0);
        let mut fired = Vec::new();
        // 20 ms in: not yet (25 ms rounds up to the 30 ms boundary).
        wheel.advance(start + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty());
        wheel.advance(start + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![(1, 0)]);
    }

    #[test]
    fn stale_generations_still_fire_and_are_filtered_by_the_caller() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 4, start);
        wheel.arm(start, Duration::from_millis(5), 9, 0);
        // "Re-arm": bump the generation and arm further out.
        wheel.arm(start, Duration::from_millis(30), 9, 1);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_millis(12), &mut fired);
        // The stale gen-0 entry fires; a caller tracking gen 1 ignores it.
        assert_eq!(fired, vec![(9, 0)]);
        fired.clear();
        wheel.advance(start + Duration::from_millis(60), &mut fired);
        assert_eq!(fired, vec![(9, 1)]);
    }

    #[test]
    fn deadlines_past_one_revolution_survive_the_sweep() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4, start);
        // 4 slots × 10 ms = one 40 ms revolution; 95 ms is 2+ rounds out.
        wheel.arm(start, Duration::from_millis(95), 3, 0);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_millis(80), &mut fired);
        assert!(fired.is_empty(), "fired a full revolution early");
        wheel.advance(start + Duration::from_millis(120), &mut fired);
        assert_eq!(fired, vec![(3, 0)]);
    }

    #[test]
    fn next_deadline_bounds_the_wait() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, start);
        assert!(wheel.next_deadline(start).is_none());
        wheel.arm(start, Duration::from_millis(35), 1, 0);
        let wait = wheel.next_deadline(start).expect("armed");
        assert!(wait <= Duration::from_millis(40), "wait {wait:?} too long");
        let mut fired = Vec::new();
        wheel.advance(start + wait + Duration::from_millis(10), &mut fired);
        assert_eq!(fired, vec![(1, 0)]);
        assert_eq!(wheel.armed(), 0);
    }
}
