//! End-to-end daemon test (the acceptance scenario of the serve issue):
//! an in-process daemon on an ephemeral port, concurrent clients of
//! every request type cross-checked against direct library calls, a
//! registry cache-hit assertion, a 0 ms deadline, and a clean drain.

use std::sync::Arc;
use std::time::Duration;

use lotus_core::kclique::count_kcliques;
use lotus_core::per_vertex::count_per_vertex;
use lotus_core::preprocess::build_lotus_graph;
use lotus_core::LotusConfig;
use lotus_gen::Rmat;
use lotus_resilience::MemoryBudget;
use lotus_serve::proto::{ErrorKind, Request, Response, NO_DEADLINE};
use lotus_serve::{spawn, Client, ServeConfig};

const GRAPH_SPEC: &str = "rmat:8:8:11";

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_capacity: 64,
        budget: MemoryBudget::from_bytes(256 << 20),
        ..ServeConfig::default()
    }
}

/// Direct library answers for the same spec the daemon builds.
struct Expected {
    triangles: u64,
    per_vertex: Vec<u64>,
    cliques4: u64,
}

fn expected() -> Expected {
    let graph = Rmat::new(8, 8).generate(11);
    let config = LotusConfig::auto(&graph);
    let lg = build_lotus_graph(&graph, &config);
    let per_vertex = count_per_vertex(&lg);
    let triangles = per_vertex.iter().sum::<u64>() / 3;
    Expected {
        triangles,
        per_vertex,
        cliques4: count_kcliques(&graph, 4),
    }
}

#[test]
fn daemon_end_to_end() {
    let handle = spawn(test_config()).expect("daemon should start");
    let addr = handle.addr();
    let want = expected();

    // Load the graph once via the admin path.
    let mut admin = Client::connect(addr).expect("connect");
    match admin
        .call(&Request::LoadGraph {
            name: "g".into(),
            spec: GRAPH_SPEC.into(),
        })
        .expect("load")
    {
        Response::Loaded {
            vertices, edges, ..
        } => {
            assert_eq!(vertices, 256);
            assert!(edges > 0);
        }
        other => panic!("unexpected LoadGraph reply: {other:?}"),
    }

    // Concurrent clients: 2× Count, 1× PerVertex, 1× KClique, plus a
    // batch — at least four client threads hammering the same graph.
    let want = Arc::new(want);
    let mut clients = Vec::new();
    for i in 0..5 {
        let want = Arc::clone(&want);
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_timeout(Some(Duration::from_secs(60)))
                .expect("timeout");
            match i {
                0 | 1 => {
                    let reply = client
                        .call(&Request::Count {
                            name: "g".into(),
                            deadline_ms: NO_DEADLINE,
                        })
                        .expect("count");
                    match reply {
                        Response::Count { triangles, .. } => {
                            assert_eq!(triangles, want.triangles);
                        }
                        other => panic!("unexpected Count reply: {other:?}"),
                    }
                }
                2 => {
                    let reply = client
                        .call(&Request::PerVertex {
                            name: "g".into(),
                            start: 16,
                            end: 80,
                            deadline_ms: NO_DEADLINE,
                        })
                        .expect("per-vertex");
                    match reply {
                        Response::PerVertex { start, counts } => {
                            assert_eq!(start, 16);
                            assert_eq!(counts, want.per_vertex[16..80].to_vec());
                        }
                        other => panic!("unexpected PerVertex reply: {other:?}"),
                    }
                }
                3 => {
                    let reply = client
                        .call(&Request::KClique {
                            name: "g".into(),
                            k: 4,
                            deadline_ms: NO_DEADLINE,
                        })
                        .expect("kclique");
                    match reply {
                        Response::KClique { k, cliques } => {
                            assert_eq!(k, 4);
                            assert_eq!(cliques, want.cliques4);
                        }
                        other => panic!("unexpected KClique reply: {other:?}"),
                    }
                }
                _ => {
                    let reply = client
                        .call(&Request::Batch(vec![
                            Request::Ping,
                            Request::Count {
                                name: "g".into(),
                                deadline_ms: NO_DEADLINE,
                            },
                        ]))
                        .expect("batch");
                    match reply {
                        Response::Batch(items) => {
                            assert_eq!(items.len(), 2);
                            assert_eq!(items[0], Response::Pong);
                            match &items[1] {
                                Response::Count { triangles, .. } => {
                                    assert_eq!(*triangles, want.triangles);
                                }
                                other => panic!("unexpected batched Count: {other:?}"),
                            }
                        }
                        other => panic!("unexpected Batch reply: {other:?}"),
                    }
                }
            }
        }));
    }
    for client in clients {
        client.join().expect("client thread");
    }

    // A Count on the loaded graph is a registry cache hit: the prepared
    // structures were built exactly once (by LoadGraph).
    let reply = admin
        .call(&Request::Count {
            name: "g".into(),
            deadline_ms: NO_DEADLINE,
        })
        .expect("cached count");
    match reply {
        Response::Count {
            triangles, cached, ..
        } => {
            assert_eq!(triangles, want.triangles);
            assert!(cached, "count on a loaded graph must hit the registry");
        }
        other => panic!("unexpected Count reply: {other:?}"),
    }

    // The wire stats and the in-process state agree: exactly one build
    // (the LoadGraph) and a hit per served counting request.
    let stats = match admin.call(&Request::Stats).expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected Stats reply: {other:?}"),
    };
    assert_eq!(stats.graphs, 1);
    assert_eq!(stats.cache_misses, 1, "only LoadGraph should build");
    assert!(stats.cache_hits >= 5, "served counts must hit the cache");
    assert!(stats.requests_served >= 6);
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(stats.panics, 0);
    let state = handle.state();
    assert_eq!(state.registry().hits(), stats.cache_hits);
    assert_eq!(state.registry().misses(), 1);

    // When the workspace is built with the telemetry feature armed, the
    // daemon's always-on stats are mirrored into the global counters.
    if lotus_telemetry::enabled() {
        use lotus_telemetry::{counters, Counter};
        assert!(counters::get(Counter::RegistryHits) >= stats.cache_hits);
        assert!(counters::get(Counter::RegistryMisses) >= 1);
        assert!(counters::get(Counter::RequestsServed) >= stats.requests_served);
    }

    // A 0 ms deadline expires before execution — a structured error,
    // not a hang, and the daemon survives it.
    let reply = admin
        .call(&Request::Count {
            name: "g".into(),
            deadline_ms: 0,
        })
        .expect("deadline call");
    assert!(
        matches!(
            reply,
            Response::Error {
                kind: ErrorKind::DeadlineExpired,
                ..
            }
        ),
        "0 ms deadline must expire, got {reply:?}"
    );
    assert_eq!(admin.call(&Request::Ping).expect("ping"), Response::Pong);
    let stats = match admin.call(&Request::Stats).expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected Stats reply: {other:?}"),
    };
    assert_eq!(stats.deadline_expired, 1);

    // Unknown graph name (not a spec): typed NotFound.
    let reply = admin
        .call(&Request::Count {
            name: "missing".into(),
            deadline_ms: NO_DEADLINE,
        })
        .expect("not-found call");
    assert!(matches!(
        reply,
        Response::Error {
            kind: ErrorKind::NotFound,
            ..
        }
    ));

    // Evict, then drain: the daemon acknowledges and exits cleanly.
    assert_eq!(
        admin
            .call(&Request::EvictGraph { name: "g".into() })
            .expect("evict"),
        Response::Evicted { existed: true }
    );
    assert_eq!(
        admin.call(&Request::Drain).expect("drain"),
        Response::Draining
    );
    handle.wait();
}

#[test]
fn preload_and_spec_named_queries() {
    let config = ServeConfig {
        preload: vec![("warm".into(), "er:128:512:3".into())],
        ..test_config()
    };
    let handle = spawn(config).expect("daemon should start");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The preloaded graph is resident before the first request.
    let reply = client
        .call(&Request::Count {
            name: "warm".into(),
            deadline_ms: NO_DEADLINE,
        })
        .expect("count");
    assert!(
        matches!(reply, Response::Count { cached: true, .. }),
        "preloaded graph must be a cache hit, got {reply:?}"
    );

    // A spec-shaped name builds on demand, then caches.
    let reply = client
        .call(&Request::Count {
            name: "rmat:6:4:5".into(),
            deadline_ms: NO_DEADLINE,
        })
        .expect("spec count");
    assert!(matches!(reply, Response::Count { cached: false, .. }));
    let reply = client
        .call(&Request::Count {
            name: "rmat:6:4:5".into(),
            deadline_ms: NO_DEADLINE,
        })
        .expect("spec count again");
    assert!(matches!(reply, Response::Count { cached: true, .. }));

    handle.shutdown();
    handle.wait();
}

#[test]
fn overload_is_reported_not_hung() {
    // One worker, one queue slot: with the worker busy and the slot
    // taken, the third concurrent request must be refused immediately.
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    };
    let handle = spawn(config).expect("daemon should start");
    let addr = handle.addr();
    let mut admin = Client::connect(addr).expect("connect");
    admin
        .call(&Request::LoadGraph {
            name: "g".into(),
            spec: "rmat:9:16:3".into(),
        })
        .expect("load");

    let mut clients = Vec::new();
    for _ in 0..8 {
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_timeout(Some(Duration::from_secs(60)))
                .expect("timeout");
            let reply = client
                .call(&Request::Count {
                    name: "g".into(),
                    deadline_ms: NO_DEADLINE,
                })
                .expect("count");
            matches!(
                reply,
                Response::Error {
                    kind: ErrorKind::Overloaded,
                    ..
                }
            )
        }));
    }
    let overloaded = clients
        .into_iter()
        .map(|c| c.join().expect("client"))
        .filter(|&was_overloaded| was_overloaded)
        .count();
    // Scheduling decides the exact number, but stats must agree with
    // whatever the clients observed, and every request got an answer.
    let stats = match admin.call(&Request::Stats).expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected Stats reply: {other:?}"),
    };
    assert_eq!(stats.overloaded, overloaded as u64);
    assert_eq!(stats.requests_served + stats.overloaded, 8);

    handle.shutdown();
    handle.wait();
}
