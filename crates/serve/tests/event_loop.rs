//! Event-loop protocol suite: the readiness daemon's state machines
//! under adversarial delivery — byte-at-a-time frames, pipelined
//! batches with damage mid-stream, slow-loris idlers, EOF mid-frame,
//! and drain under load. Every test asserts the daemon stays healthy
//! (or drains completely) afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use lotus_resilience::MemoryBudget;
use lotus_serve::proto::{
    read_response, write_frame, write_request, ErrorKind, Request, Response, NO_DEADLINE,
};
use lotus_serve::{spawn, Client, ServeConfig, ServerHandle};

fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        budget: MemoryBudget::from_bytes(64 << 20),
        event_threads: 2,
        ..ServeConfig::default()
    }
}

fn start_daemon(config: ServeConfig) -> ServerHandle {
    spawn(config).expect("daemon should start")
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("timeout");
    stream
}

/// The daemon is alive: a fresh connection answers a Ping.
fn assert_daemon_healthy(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("fresh connection");
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Pong);
}

fn encode(request: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_request(&mut wire, request).expect("encode");
    wire
}

#[test]
fn byte_at_a_time_delivery_still_parses() {
    let handle = start_daemon(base_config());
    let mut stream = raw_connect(&handle);
    // Trickle a whole Ping frame one byte per write, with flushes, so
    // the daemon sees every possible partial-frame boundary.
    for byte in encode(&Request::Ping) {
        stream.write_all(&[byte]).expect("write");
        stream.flush().expect("flush");
    }
    assert_eq!(read_response(&mut stream).expect("pong"), Response::Pong);
    // Two interleaved trickled frames on the same connection.
    let wire = encode(&Request::Stats);
    let (a, b) = wire.split_at(wire.len() / 2);
    stream.write_all(a).expect("write");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(20));
    stream.write_all(b).expect("write");
    assert!(matches!(
        read_response(&mut stream).expect("stats"),
        Response::Stats(_)
    ));
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn pipelined_batch_with_damage_mid_stream_answers_in_order() {
    let handle = start_daemon(base_config());
    let mut admin = Client::connect(handle.addr()).expect("connect");
    admin
        .call(&Request::LoadGraph {
            name: "g".into(),
            spec: "rmat:8:8:5".into(),
        })
        .expect("load");

    // One write carrying three frames: a valid Count, a CRC-valid frame
    // whose payload is garbage (unknown tag), and a valid Ping. The
    // contract: three responses, in order, and the connection survives
    // because the framing layer never lost sync.
    let mut stream = raw_connect(&handle);
    let mut wire = encode(&Request::Count {
        name: "g".into(),
        deadline_ms: NO_DEADLINE,
    });
    write_frame(&mut wire, &[0xEE, 9, 9, 9]).expect("frame");
    wire.extend_from_slice(&encode(&Request::Ping));
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");

    match read_response(&mut stream).expect("first response") {
        Response::Count { triangles, .. } => assert!(triangles > 0),
        other => panic!("expected Count first, got {other:?}"),
    }
    match read_response(&mut stream).expect("second response") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest second, got {other:?}"),
    }
    assert_eq!(
        read_response(&mut stream).expect("third response"),
        Response::Pong
    );

    // Still synchronized: the same connection keeps serving.
    stream.write_all(&encode(&Request::Ping)).expect("write");
    assert_eq!(read_response(&mut stream).expect("pong"), Response::Pong);
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn deep_pipeline_of_counts_comes_back_in_order() {
    let handle = start_daemon(base_config());
    let mut admin = Client::connect(handle.addr()).expect("connect");
    admin
        .call(&Request::LoadGraph {
            name: "g".into(),
            spec: "rmat:8:8:5".into(),
        })
        .expect("load");
    let mut stream = raw_connect(&handle);
    // 16 pipelined PerVertex requests with distinct starts; the starts
    // echoed back prove per-connection response ordering.
    let mut wire = Vec::new();
    for i in 0..16u32 {
        wire.extend_from_slice(&encode(&Request::PerVertex {
            name: "g".into(),
            start: i,
            end: i + 1,
            deadline_ms: NO_DEADLINE,
        }));
    }
    stream.write_all(&wire).expect("write");
    for i in 0..16u32 {
        match read_response(&mut stream).expect("pipelined response") {
            Response::PerVertex { start, .. } => assert_eq!(start, i),
            other => panic!("expected PerVertex {i}, got {other:?}"),
        }
    }
    handle.shutdown();
    handle.wait();
}

#[test]
fn slow_loris_connections_are_evicted_active_ones_are_not() {
    let config = ServeConfig {
        idle_timeout: Duration::from_millis(200),
        ..base_config()
    };
    let handle = start_daemon(config);

    // The loris: a partial frame, then silence.
    let mut loris = raw_connect(&handle);
    loris.write_all(b"LS").expect("write");
    loris.flush().expect("flush");

    // An active client keeps pinging through the loris's timeout window
    // — activity must keep *it* alive while the idler is evicted.
    let mut active = Client::connect(handle.addr()).expect("connect");
    loris
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("timeout");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut evicted = false;
    while Instant::now() < deadline {
        assert_eq!(active.call(&Request::Ping).expect("ping"), Response::Pong);
        // Probing the loris socket: eviction surfaces as EOF or reset;
        // a read timeout means it is (wrongly) still open.
        let mut probe = [0u8; 1];
        match std::io::Read::read(&mut loris, &mut probe) {
            Ok(0) => {
                evicted = true;
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                evicted = true;
                break;
            }
            Ok(_) => panic!("loris got unsolicited bytes"),
        }
    }
    assert!(evicted, "idle partial-frame connection was never evicted");
    // The active connection survived the whole window.
    assert_eq!(active.call(&Request::Ping).expect("ping"), Response::Pong);
    handle.shutdown();
    handle.wait();
}

#[test]
fn eof_and_aborts_mid_frame_leave_the_daemon_healthy() {
    let handle = start_daemon(base_config());
    // Clean EOF mid-frame.
    {
        let mut stream = raw_connect(&handle);
        stream.write_all(b"LSRV\x01\x00\x00\x00").expect("write");
    }
    // Connect and say nothing at all.
    {
        let _silent = raw_connect(&handle);
    }
    // EOF exactly between the header and the declared payload.
    {
        let mut stream = raw_connect(&handle);
        let wire = encode(&Request::Ping);
        stream.write_all(&wire[..12]).expect("write");
    }
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn drain_under_load_answers_every_accepted_request_in_order() {
    let handle = start_daemon(base_config());
    let mut admin = Client::connect(handle.addr()).expect("connect");
    admin
        .call(&Request::LoadGraph {
            name: "g".into(),
            spec: "rmat:8:8:5".into(),
        })
        .expect("load");

    // One write: 8 Counts then a Drain, all pipelined. The daemon must
    // answer all nine in order — work accepted before the drain is
    // flushed, not dropped — then close.
    let mut stream = raw_connect(&handle);
    let mut wire = Vec::new();
    for _ in 0..8 {
        wire.extend_from_slice(&encode(&Request::Count {
            name: "g".into(),
            deadline_ms: NO_DEADLINE,
        }));
    }
    wire.extend_from_slice(&encode(&Request::Drain));
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");

    for i in 0..8 {
        match read_response(&mut stream).expect("pipelined count") {
            Response::Count { triangles, .. } => assert!(triangles > 0, "count {i}"),
            other => panic!("expected Count {i}, got {other:?}"),
        }
    }
    assert_eq!(
        read_response(&mut stream).expect("drain ack"),
        Response::Draining
    );
    // The daemon drains fully: loops flush, close, and the process's
    // serving threads exit.
    handle.wait();
    // And the socket is actually closed from the daemon side.
    let mut probe = [0u8; 1];
    match std::io::Read::read(&mut stream, &mut probe) {
        Ok(0) | Err(_) => {}
        Ok(_) => panic!("unexpected bytes after drain"),
    }
}

#[test]
fn stats_report_event_loop_shape() {
    let config = ServeConfig {
        event_threads: 3,
        ..base_config()
    };
    let handle = start_daemon(config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let stats = match client.call(&Request::Stats).expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected Stats reply: {other:?}"),
    };
    assert_eq!(stats.event_threads, 3);
    assert!(stats.conns_accepted >= 1);
    assert!(stats.conns_open >= 1);
    handle.shutdown();
    handle.wait();
}
