//! Arming tests for the durability fault points: each of the four
//! points (`serve.snapshot.write` / `fsync` / `rename`,
//! `serve.journal.append`) must surface as a typed [`StoreError`],
//! leave behind exactly the artifact a real crash at that instant
//! would, and be fully healed by the next recovery pass.
//!
//! Requires `--features fault-injection`; the fault registry is
//! process-global, so tests serialize on a lock.

#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::Mutex;

use lotus_resilience::fault::{arm, reset, FaultKind};
use lotus_serve::journal::read_journal;
use lotus_serve::recovery::recover;
use lotus_serve::store::{snapshot_dir, snapshot_file_name, DurableStore, StoreError};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lotus-faultrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn graph() -> lotus_graph::UndirectedCsr {
    lotus_gen::Rmat::new(6, 4).generate(3)
}

/// Arms `point`, drives one registration into it, and asserts the
/// typed error plus the expected on-disk wreckage; then verifies
/// recovery heals the directory and a clean retry succeeds.
fn crash_register_at(tag: &str, point: &'static str, expect_temp: bool) {
    let dir = tmp_dir(tag);
    let g = graph();
    {
        let store = DurableStore::open(&dir).unwrap().0;
        arm(point, FaultKind::IoError, 1);
        let err = store
            .record_register("g", "rmat:6:4:3", &g)
            .expect_err(point);
        reset();
        assert!(matches!(err, StoreError::Io { .. }), "{point}: {err:?}");
        assert!(err.to_string().contains(point), "{point}: {err}");
        // The failed registration must not be acknowledged as durable.
        assert!(!store.is_durable("g"), "{point}");
    }
    let temp = snapshot_dir(&dir).join(format!("{}.tmp", snapshot_file_name("g")));
    assert_eq!(temp.exists(), expect_temp, "{point}: torn temp on disk");

    // Recovery: nothing comes back (the registration never reached the
    // journal), any torn temp is quarantined, and the directory is
    // clean enough that a retry registers durably.
    let state = recover(&dir, false).unwrap();
    assert_eq!(state.graphs.len(), 0, "{point}");
    if expect_temp {
        assert!(
            state
                .report
                .quarantined
                .iter()
                .any(|q| q.reason.contains("torn temp")),
            "{point}: {:?}",
            state.report.quarantined
        );
        assert!(!temp.exists(), "{point}: temp quarantined away");
    }

    let (store, recovered) = DurableStore::open(&dir).unwrap();
    assert!(recovered.graphs.is_empty(), "{point}");
    store.record_register("g", "rmat:6:4:3", &g).unwrap();
    drop(store);
    let healed = recover(&dir, false).unwrap();
    assert_eq!(healed.report.recovered, 1, "{point}");
    assert_eq!(healed.graphs[0].edges, g.to_canonical_edges(), "{point}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_write_is_typed_and_quarantined() {
    let _guard = locked();
    reset();
    // The fault fires on the first 4096-byte chunk: a partial temp file
    // stays behind, exactly what a crash mid-write leaves.
    crash_register_at("write", "serve.snapshot.write", true);
    reset();
}

#[test]
fn failed_snapshot_fsync_is_typed_and_quarantined() {
    let _guard = locked();
    reset();
    // All bytes written but never synced: the temp is complete yet
    // unacknowledged — recovery must still set it aside, because its
    // durability was never established.
    crash_register_at("fsync", "serve.snapshot.fsync", true);
    reset();
}

#[test]
fn crash_before_rename_is_typed_and_quarantined() {
    let _guard = locked();
    reset();
    crash_register_at("rename", "serve.snapshot.rename", true);
    reset();
}

#[test]
fn torn_journal_append_loses_only_the_torn_record() {
    let _guard = locked();
    reset();
    let dir = tmp_dir("append");
    let g = graph();
    {
        let store = DurableStore::open(&dir).unwrap().0;
        // First registration is durable; the second tears mid-append.
        store.record_register("a", "rmat:6:4:3", &g).unwrap();
        arm("serve.journal.append", FaultKind::IoError, 1);
        let err = store
            .record_register("b", "rmat:6:4:3", &g)
            .expect_err("torn append");
        reset();
        assert!(matches!(err, StoreError::Io { .. }), "{err:?}");
        assert!(!store.is_durable("b"));
    }
    // The journal carries `a` plus half of `b`'s frame: replay reports
    // the tear and keeps the synced prefix.
    let readout = read_journal(dir.join("journal.lotj")).unwrap();
    assert_eq!(readout.records.len(), 1, "synced prefix only");
    assert!(readout.damage.is_some(), "torn tail reported");

    let state = recover(&dir, false).unwrap();
    assert_eq!(state.report.recovered, 1);
    assert_eq!(state.graphs[0].name, "a");
    assert!(state.report.journal_damage.is_some());
    // `b`'s snapshot was durable before the append — recovery leaves it
    // as an orphan (checkpoint GC's job), quarantining nothing.
    // After compaction the journal replays clean.
    let again = recover(&dir, false).unwrap();
    assert!(again.report.journal_damage.is_none());
    assert_eq!(again.report.recovered, 1);
    reset();
    let _ = std::fs::remove_dir_all(&dir);
}
