//! Protocol robustness: hostile and damaged frames must produce
//! structured error responses (where a response is possible at all) and
//! must never take the daemon down — a fresh connection works after
//! every abuse.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use lotus_resilience::MemoryBudget;
use lotus_serve::proto::{
    read_response, write_frame, write_request, ErrorKind, Request, Response, MAGIC, VERSION,
};
use lotus_serve::{spawn, Client, ServeConfig, ServerHandle};

fn start_daemon() -> ServerHandle {
    spawn(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        budget: MemoryBudget::from_bytes(64 << 20),
        ..ServeConfig::default()
    })
    .expect("daemon should start")
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
}

/// The daemon is alive: a fresh connection answers a Ping.
fn assert_daemon_healthy(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("fresh connection");
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Pong);
}

#[test]
fn truncated_frame_leaves_daemon_healthy() {
    let handle = start_daemon();
    {
        let mut stream = raw_connect(&handle);
        // A valid prefix declaring 100 payload bytes, then hang up.
        stream.write_all(MAGIC).expect("write");
        stream.write_all(&VERSION.to_le_bytes()).expect("write");
        stream.write_all(&100u32.to_le_bytes()).expect("write");
        stream.write_all(&[7u8; 10]).expect("write");
    } // dropped: connection closed mid-frame
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn oversized_declared_length_is_refused_without_preallocating() {
    let handle = start_daemon();
    let mut stream = raw_connect(&handle);
    // Declare a 4 GiB-ish payload; the daemon must answer with a typed
    // protocol error *before* reading (or allocating) any of it.
    stream.write_all(MAGIC).expect("write");
    stream.write_all(&VERSION.to_le_bytes()).expect("write");
    stream.write_all(&u32::MAX.to_le_bytes()).expect("write");
    stream.flush().expect("flush");
    let reply = read_response(&mut stream).expect("error response");
    match reply {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn bad_crc_yields_protocol_error() {
    let handle = start_daemon();
    let mut stream = raw_connect(&handle);
    // A well-formed Ping frame with one payload-adjacent byte flipped.
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Ping).expect("encode");
    let last = wire.len() - 1;
    wire[last] ^= 0xFF; // corrupt the CRC trailer itself
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");
    let reply = read_response(&mut stream).expect("error response");
    match reply {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("checksum"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn unknown_request_tag_keeps_the_connection_open() {
    let handle = start_daemon();
    let mut stream = raw_connect(&handle);
    // Frame-valid payload whose first byte is no known request tag.
    let mut wire = Vec::new();
    write_frame(&mut wire, &[0xEEu8, 1, 2, 3]).expect("frame");
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");
    let reply = read_response(&mut stream).expect("error response");
    match reply {
        Response::Error { kind, message } => {
            assert_eq!(kind, ErrorKind::BadRequest);
            assert!(message.contains("unknown message tag"), "{message}");
        }
        other => panic!("expected bad-request error, got {other:?}"),
    }
    // The CRC passed, so the stream is still synchronized: the *same*
    // connection keeps working.
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Ping).expect("encode");
    stream.write_all(&wire).expect("write");
    assert_eq!(
        read_response(&mut stream).expect("ping on same connection"),
        Response::Pong
    );
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn bad_magic_yields_protocol_error() {
    let handle = start_daemon();
    let mut stream = raw_connect(&handle);
    stream.write_all(b"GET / HTTP/1.1\r\n").expect("write");
    stream.flush().expect("flush");
    let reply = read_response(&mut stream).expect("error response");
    assert!(matches!(
        reply,
        Response::Error {
            kind: ErrorKind::Protocol,
            ..
        }
    ));
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn malformed_payload_keeps_the_connection_open() {
    let handle = start_daemon();
    let mut stream = raw_connect(&handle);
    // Tag 2 (Count) with a string length pointing past the payload end.
    let mut wire = Vec::new();
    write_frame(&mut wire, &[2u8, 0xFF, 0xFF]).expect("frame");
    stream.write_all(&wire).expect("write");
    stream.flush().expect("flush");
    let reply = read_response(&mut stream).expect("error response");
    assert!(matches!(
        reply,
        Response::Error {
            kind: ErrorKind::BadRequest,
            ..
        }
    ));
    // Same connection still serves.
    let mut wire = Vec::new();
    write_request(&mut wire, &Request::Stats).expect("encode");
    stream.write_all(&wire).expect("write");
    assert!(matches!(
        read_response(&mut stream).expect("stats"),
        Response::Stats(_)
    ));
    handle.shutdown();
    handle.wait();
}

#[test]
fn slow_lorris_style_idle_connection_does_not_block_others() {
    let handle = start_daemon();
    // An idle connection that never sends a byte...
    let _idle = raw_connect(&handle);
    // ...must not stop other clients from being served.
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}

#[test]
fn eof_between_frames_is_a_clean_close() {
    let handle = start_daemon();
    {
        let mut stream = raw_connect(&handle);
        // One good request, then hang up between frames.
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Ping).expect("encode");
        stream.write_all(&wire).expect("write");
        assert_eq!(read_response(&mut stream).expect("ping"), Response::Pong);
    } // dropped between frames: clean EOF on the daemon side
    assert_daemon_healthy(&handle);
    handle.shutdown();
    handle.wait();
}
