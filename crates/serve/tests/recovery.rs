//! The recovery corruption matrix: every way a crash (or bad disk) can
//! damage the durability state must quarantine the damaged artifact and
//! keep serving everything else — never panic, never refuse to start,
//! never resurrect a graph whose snapshot cannot be CRC-verified.
//!
//! Each case seeds a real data directory through [`DurableStore`],
//! damages it the way the matrix row says, then asserts the *exact*
//! surviving set and the quarantine report.

use std::path::{Path, PathBuf};

use lotus_serve::journal::{read_journal, Journal, JournalRecord};
use lotus_serve::recovery::recover;
use lotus_serve::store::{snapshot_dir, snapshot_file_name, DurableStore};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lotus-recmatrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Registers `names` as small distinct RMAT graphs and returns the dir.
fn seeded_dir(tag: &str, names: &[&str]) -> PathBuf {
    let dir = tmp_dir(tag);
    let store = DurableStore::open(&dir).unwrap().0;
    for (i, name) in names.iter().enumerate() {
        let graph = lotus_gen::Rmat::new(6, 4).generate(i as u64 + 1);
        let spec = format!("rmat:6:4:{}", i + 1);
        store.record_register(name, &spec, &graph).unwrap();
    }
    dir
}

fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    snapshot_dir(dir).join(snapshot_file_name(name))
}

/// Flips one bit at `offset` (negative = from the end) of `name`'s
/// snapshot.
fn flip_bit(dir: &Path, name: &str, offset: i64) {
    let path = snapshot_path(dir, name);
    let mut bytes = std::fs::read(&path).unwrap();
    let at = if offset < 0 {
        bytes.len() - offset.unsigned_abs() as usize
    } else {
        offset as usize
    };
    bytes[at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
}

/// One damaged-snapshot row: damage `bad` out of {a, bad, c}, assert
/// the survivors are exactly {a, c} and `bad` landed in quarantine.
fn assert_bad_snapshot_quarantined(dir: &Path) {
    let state = recover(dir, false).unwrap();
    let names: Vec<&str> = state.graphs.iter().map(|g| g.name.as_str()).collect();
    assert_eq!(names, ["a", "c"], "exact surviving set");
    assert_eq!(state.report.recovered, 2);
    assert_eq!(state.report.quarantined.len(), 1);
    let q = &state.report.quarantined[0];
    assert!(q.file.contains("bad"), "{q:?}");
    // The damaged file moved aside, preserving its name for forensics.
    assert!(!snapshot_path(dir, "bad").exists());
    assert!(dir
        .join("quarantine")
        .join(snapshot_file_name("bad"))
        .exists());
    // The compacted journal no longer references it: a second recovery
    // is clean and identical.
    let again = recover(dir, false).unwrap();
    assert_eq!(again.report.recovered, 2);
    assert!(again.report.quarantined.is_empty(), "{:?}", again.report);
    assert!(again.report.journal_damage.is_none());
}

#[test]
fn bit_flip_in_snapshot_header_is_quarantined() {
    let dir = seeded_dir("header", &["a", "bad", "c"]);
    flip_bit(&dir, "bad", 0); // magic byte
    assert_bad_snapshot_quarantined(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_snapshot_payload_is_quarantined() {
    let dir = seeded_dir("payload", &["a", "bad", "c"]);
    let len = std::fs::read(snapshot_path(&dir, "bad")).unwrap().len();
    flip_bit(&dir, "bad", (len / 2) as i64);
    assert_bad_snapshot_quarantined(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_in_snapshot_crc_trailer_is_quarantined() {
    let dir = seeded_dir("crc", &["a", "bad", "c"]);
    flip_bit(&dir, "bad", -1); // last CRC byte
    assert_bad_snapshot_quarantined(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_snapshot_is_quarantined() {
    let dir = seeded_dir("zero", &["a", "bad", "c"]);
    std::fs::write(snapshot_path(&dir, "bad"), b"").unwrap();
    assert_bad_snapshot_quarantined(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_journal_records_fold_last_wins() {
    let dir = seeded_dir("dup", &["a"]);
    // Re-register `a` under a different spec: same snapshot file, two
    // Register records. Folding must keep exactly one entry, the last.
    let store = DurableStore::open(&dir).unwrap().0;
    let graph = lotus_gen::Rmat::new(6, 4).generate(9);
    store.record_register("a", "rmat:6:4:9", &graph).unwrap();
    drop(store);

    let state = recover(&dir, false).unwrap();
    assert_eq!(state.graphs.len(), 1, "duplicate records, one graph");
    assert_eq!(state.graphs[0].spec, "rmat:6:4:9", "last record wins");
    assert_eq!(
        state.entries,
        vec![("a".to_string(), "rmat:6:4:9".to_string())]
    );
    assert!(state.report.quarantined.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_record_for_missing_snapshot_is_reported_not_fatal() {
    let dir = seeded_dir("missing", &["a", "gone", "c"]);
    std::fs::remove_file(snapshot_path(&dir, "gone")).unwrap();

    let state = recover(&dir, false).unwrap();
    let names: Vec<&str> = state.graphs.iter().map(|g| g.name.as_str()).collect();
    assert_eq!(names, ["a", "c"]);
    assert_eq!(state.report.quarantined.len(), 1);
    assert!(
        state.report.quarantined[0].reason.contains("no snapshot"),
        "{:?}",
        state.report.quarantined[0]
    );
    // Nothing to move: the file is simply gone, so quarantine holds
    // nothing for it (only a report entry).
    assert!(!dir
        .join("quarantine")
        .join(snapshot_file_name("gone"))
        .exists());
    // The compaction dropped the dangling entry.
    let again = recover(&dir, false).unwrap();
    assert!(again.report.quarantined.is_empty(), "{:?}", again.report);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hand_written_evict_and_duplicate_records_replay_exactly() {
    // Drive the journal directly (no store) to pin the fold semantics
    // recovery relies on: Register last-wins, Evict removes.
    let dir = tmp_dir("fold");
    let path = dir.join("journal.lotj");
    {
        let mut j = Journal::open(&path).unwrap();
        for record in [
            JournalRecord::Register {
                name: "x".into(),
                spec: "er:64:128:1".into(),
            },
            JournalRecord::Register {
                name: "y".into(),
                spec: "er:64:128:2".into(),
            },
            JournalRecord::Register {
                name: "x".into(),
                spec: "er:64:128:3".into(),
            },
            JournalRecord::Evict { name: "y".into() },
        ] {
            j.append(&record).unwrap();
        }
    }
    let readout = read_journal(&path).unwrap();
    assert_eq!(readout.records.len(), 4);
    assert!(readout.damage.is_none());
    assert_eq!(
        readout.fold(),
        vec![("x".to_string(), "er:64:128:3".to_string())]
    );
    // Recovery of that state reports the dangling `x` (no snapshot was
    // ever written) without touching anything else.
    let state = recover(&dir, false).unwrap();
    assert!(state.graphs.is_empty());
    assert_eq!(state.report.quarantined.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_discards_only_the_torn_record() {
    let dir = seeded_dir("torn", &["a", "b"]);
    // Tear the journal mid-record: everything before the tear replays.
    let path = dir.join("journal.lotj");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let state = recover(&dir, false).unwrap();
    let names: Vec<&str> = state.graphs.iter().map(|g| g.name.as_str()).collect();
    assert_eq!(names, ["a"], "only the synced prefix survives");
    assert!(state.report.journal_damage.is_some());
    // `b`'s snapshot is durable but no longer referenced — that is an
    // orphan for checkpoint GC, not damage; recovery must not load it.
    assert!(snapshot_path(&dir, "b").exists());
    // The rewritten journal replays cleanly now.
    let again = recover(&dir, false).unwrap();
    assert!(again.report.journal_damage.is_none());
    assert_eq!(again.report.recovered, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
