//! Process-wide work counters for the counting kernels.
//!
//! Each [`Counter`] is a cache-line-padded relaxed `AtomicU64`; call
//! sites batch locally (per tile, per vertex, per intersection) before
//! adding, so the probe effect of an instrumented build stays small.
//! Without the `telemetry` feature every function here is an empty
//! `#[inline(always)]` body and the statics are never emitted.

/// A named work counter. Names are stable: they are the keys of the
/// `counters` object in `BENCH.json` (schema v1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Sorted-list intersections performed (merge, gallop, hash...).
    Intersections,
    /// Merge-join loop steps: the streaming, cache-friendly work of the
    /// HNN/NNN phases and the Forward baselines.
    MergeSteps,
    /// Intersections that found no common neighbour — the fruitless
    /// work the paper's hub pruning is designed to avoid (§3.3).
    FruitlessIntersections,
    /// Dense bitmap membership probes (new-vertex-listing kernels).
    BitmapProbes,
    /// H2H triangular bit-array probes (phase 1 hub-pair tests).
    H2hProbes,
    /// H2H probes that hit a set bit (found an HHH/HHN triangle).
    H2hHits,
    /// Squared-edge tiles processed by phase 1 (§4.6).
    TileVisits,
    /// Memory-budget degradations applied (hub shrink or fallback).
    DegradedRuns,
    /// Cooperative stops (cancellation / deadline) observed by a phase.
    GuardStops,
    /// Worker panics confined by phase isolation.
    PhasePanics,
    /// Requests answered successfully by the serving layer.
    RequestsServed,
    /// Requests rejected by admission control (bounded queue full).
    RequestsOverloaded,
    /// Requests that expired their deadline before or during execution.
    RequestsDeadlineExpired,
    /// Graph-registry lookups served from the preprocessed cache.
    RegistryHits,
    /// Graph-registry lookups that had to build or load the graph.
    RegistryMisses,
    /// Chunks executed by the work-stealing pool (drivers and workers).
    PoolTasks,
    /// Deque entries stolen by an idle worker (steal-half events).
    PoolSteals,
    /// Times a worker parked on the condvar for lack of work.
    PoolParks,
    /// Graph snapshots durably written (temp + fsync + rename).
    SnapshotWrites,
    /// Records appended and synced to the manifest journal.
    JournalAppends,
    /// Journal records replayed during startup recovery.
    JournalReplays,
    /// Damaged durability files quarantined during recovery.
    RecoveryQuarantined,
    /// Connections admitted by the serve acceptor.
    ConnsAccepted,
    /// Readiness events delivered to the serve event loops.
    ReadinessEvents,
    /// Times a serve event loop woke from its poller wait.
    LoopWakeups,
    /// Socket writes that could not complete in one call (resumed when
    /// the socket signals writable again).
    PartialWrites,
    /// Shard calls fanned out by a cluster coordinator.
    ClusterFanoutCalls,
    /// Fanned-out shard calls that resolved to an error (dead, slow, or
    /// desynced shard).
    ClusterShardFailures,
    /// Degraded partial `Count` answers a coordinator returned.
    ClusterPartialAnswers,
    /// Malformed shard-map journal entries tolerated during coordinator
    /// recovery.
    ClusterMapRecoveryErrors,
}

impl Counter {
    /// Every counter, in schema order.
    pub const ALL: [Counter; 30] = [
        Counter::Intersections,
        Counter::MergeSteps,
        Counter::FruitlessIntersections,
        Counter::BitmapProbes,
        Counter::H2hProbes,
        Counter::H2hHits,
        Counter::TileVisits,
        Counter::DegradedRuns,
        Counter::GuardStops,
        Counter::PhasePanics,
        Counter::RequestsServed,
        Counter::RequestsOverloaded,
        Counter::RequestsDeadlineExpired,
        Counter::RegistryHits,
        Counter::RegistryMisses,
        Counter::PoolTasks,
        Counter::PoolSteals,
        Counter::PoolParks,
        Counter::SnapshotWrites,
        Counter::JournalAppends,
        Counter::JournalReplays,
        Counter::RecoveryQuarantined,
        Counter::ConnsAccepted,
        Counter::ReadinessEvents,
        Counter::LoopWakeups,
        Counter::PartialWrites,
        Counter::ClusterFanoutCalls,
        Counter::ClusterShardFailures,
        Counter::ClusterPartialAnswers,
        Counter::ClusterMapRecoveryErrors,
    ];

    /// The stable snake_case name used as the JSON key.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Intersections => "intersections",
            Counter::MergeSteps => "merge_steps",
            Counter::FruitlessIntersections => "fruitless_intersections",
            Counter::BitmapProbes => "bitmap_probes",
            Counter::H2hProbes => "h2h_probes",
            Counter::H2hHits => "h2h_hits",
            Counter::TileVisits => "tile_visits",
            Counter::DegradedRuns => "degraded_runs",
            Counter::GuardStops => "guard_stops",
            Counter::PhasePanics => "phase_panics",
            Counter::RequestsServed => "requests_served",
            Counter::RequestsOverloaded => "requests_overloaded",
            Counter::RequestsDeadlineExpired => "requests_deadline_expired",
            Counter::RegistryHits => "registry_hits",
            Counter::RegistryMisses => "registry_misses",
            Counter::PoolTasks => "pool_tasks",
            Counter::PoolSteals => "pool_steals",
            Counter::PoolParks => "pool_parks",
            Counter::SnapshotWrites => "snapshot_writes",
            Counter::JournalAppends => "journal_appends",
            Counter::JournalReplays => "journal_replays",
            Counter::RecoveryQuarantined => "recovery_quarantined",
            Counter::ConnsAccepted => "conns_accepted",
            Counter::ReadinessEvents => "readiness_events",
            Counter::LoopWakeups => "loop_wakeups",
            Counter::PartialWrites => "partial_writes",
            Counter::ClusterFanoutCalls => "cluster_fanout_calls",
            Counter::ClusterShardFailures => "cluster_shard_failures",
            Counter::ClusterPartialAnswers => "cluster_partial_answers",
            Counter::ClusterMapRecoveryErrors => "cluster_map_recovery_errors",
        }
    }

    /// Resolves a stable name back to its counter.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }

    // Declaration order matches `ALL`, so the discriminant is the slot.
    #[cfg(feature = "telemetry")]
    fn index(self) -> usize {
        self as usize
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    use super::Counter;

    /// One counter per cache line so hot-loop increments from different
    /// worker threads do not false-share.
    #[repr(align(64))]
    struct PaddedU64(AtomicU64);

    static COUNTERS: [PaddedU64; Counter::ALL.len()] =
        [const { PaddedU64(AtomicU64::new(0)) }; Counter::ALL.len()];

    pub(super) fn add(c: Counter, n: u64) {
        COUNTERS[c.index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub(super) fn get(c: Counter) -> u64 {
        COUNTERS[c.index()].0.load(Ordering::Relaxed)
    }

    pub(super) fn reset() {
        for c in &COUNTERS {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

/// Adds `n` to a counter (no-op without the `telemetry` feature).
#[inline(always)]
pub fn add(c: Counter, n: u64) {
    #[cfg(feature = "telemetry")]
    imp::add(c, n);
    #[cfg(not(feature = "telemetry"))]
    let _ = (c, n);
}

/// Increments a counter by one (no-op without the `telemetry` feature).
#[inline(always)]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Current value of a counter (always zero without the feature).
#[must_use]
pub fn get(c: Counter) -> u64 {
    #[cfg(feature = "telemetry")]
    return imp::get(c);
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = c;
        0
    }
}

/// Zeroes every counter.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    imp::reset();
}

/// A point-in-time copy of all counter values, in schema order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: Vec<(Counter, u64)>,
}

impl CounterSnapshot {
    /// The value a counter had when the snapshot was taken.
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.values
            .iter()
            .find(|(k, _)| *k == c)
            .map_or(0, |(_, v)| *v)
    }

    /// Iterates `(counter, value)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        self.values.iter().copied()
    }

    /// True when every counter was zero (e.g. a `telemetry`-off build).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|(_, v)| *v == 0)
    }
}

/// Copies every counter's current value.
#[must_use]
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        values: Counter::ALL.into_iter().map(|c| (c, get(c))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        let mut names: Vec<_> = Counter::ALL.iter().map(Counter::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
        assert_eq!(Counter::from_name("no_such_counter"), None);
    }

    // The no-op proof required by the observability issue: the same
    // instrumentation calls either record (feature on) or are compiled
    // out entirely (feature off, `get` stays zero).
    #[test]
    fn add_records_iff_feature_enabled() {
        let _guard = crate::test_lock();
        reset();
        add(Counter::MergeSteps, 41);
        incr(Counter::MergeSteps);
        if crate::enabled() {
            assert_eq!(get(Counter::MergeSteps), 42);
            assert!(!snapshot().is_zero());
        } else {
            assert_eq!(get(Counter::MergeSteps), 0);
            assert!(snapshot().is_zero());
        }
        reset();
        assert_eq!(get(Counter::MergeSteps), 0);
    }

    #[test]
    fn snapshot_reads_all_counters() {
        let _guard = crate::test_lock();
        reset();
        let s = snapshot();
        assert_eq!(s.iter().count(), Counter::ALL.len());
        assert!(s.is_zero());
    }
}
