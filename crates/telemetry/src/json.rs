//! Minimal dependency-free JSON: a value tree, a recursive-descent
//! parser, and compact/pretty writers.
//!
//! This backs the machine-readable `BENCH.json` benchmark artifact (see
//! `lotus-bench`). Objects preserve insertion order so emitted files are
//! deterministic and diff-friendly. Integers are kept distinct from
//! floats so `u64` counter totals round-trip exactly.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fraction or exponent.
    Int(i64),
    /// A fractional number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers are widened).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and non-negative.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format of checked-in baselines, so diffs stay reviewable.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write as _;
                let _ = write!(out, "{other}");
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact single-line serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) if x.is_finite() => {
                // Keep a marker so the value parses back as Float.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // JSON has no NaN/Inf; null is the least-bad representation.
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a [`JsonError`] with the byte offset of the first syntax
/// error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

/// Nesting depth cap: BENCH.json is ~4 levels deep; 128 guards the
/// recursive parser against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever stops on
                    // ASCII structure bytes, so it is a char boundary and
                    // `peek()` returning `Some` guarantees a next char.
                    let Some(c) = self.input[self.pos..].chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range contains only ASCII sign/digit/dot/exponent
        // bytes, so UTF-8 validation cannot fail.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            // Fall back to Float for integers beyond i64 (never emitted
            // by our writers, but parse-side tolerance is cheap).
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("bad number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "12345"] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("-0.125").unwrap(), Json::Float(-0.125));
    }

    #[test]
    fn float_display_keeps_marker() {
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(
            parse(&Json::Float(3.0).to_string()).unwrap(),
            Json::Float(3.0)
        );
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let v = Json::Str("a \"b\"\n\tc\\d\u{1}".into());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(parse("\"héllo ✓\"").unwrap(), Json::Str("héllo ✓".into()));
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a": [1, 2.5, {"b": "c"}], "d": null, "e": true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn accessors_type_check() {
        assert_eq!(Json::Int(5).as_u64(), Some(5));
        assert_eq!(Json::Int(-5).as_u64(), None);
        assert_eq!(Json::Float(5.0).as_u64(), None);
        assert_eq!(Json::Int(5).as_f64(), Some(5.0));
        assert_eq!(Json::Str("x".into()).as_f64(), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = parse(r#"{"a":1,"b":[true,2.0]}"#).unwrap();
        assert_eq!(
            v.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    2.0\n  ]\n}\n"
        );
    }
}
