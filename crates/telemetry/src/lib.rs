#![warn(missing_docs)]

//! Observability layer for the LOTUS workspace.
//!
//! The paper's whole argument is measured per-phase behaviour (§5
//! end-to-end times, Fig. 6 phase breakdown, Fig. 5 hardware-event
//! counts), so the counting kernels are threaded with two primitives:
//!
//! * [`span::Span`] — a scoped wall-clock timer per pipeline stage.
//!   Recording happens in `Drop`, so a span survives cooperative
//!   cancellation and `catch_unwind` panic isolation: whatever time a
//!   phase spent before it was stopped is still attributed to it.
//! * [`counters`] — process-wide work counters (intersections, merge
//!   steps, bitmap/H2H probes, tile visits, fruitless work, degrade and
//!   stop events) incremented from the hot loops.
//!
//! Both compile to no-ops unless the `telemetry` cargo feature is on:
//! every recording function has an empty `#[inline(always)]` body, so an
//! un-instrumented build pays nothing — not even an atomic load — on the
//! kernels the paper benchmarks. Crates that add *per-iteration* work to
//! feed a counter (e.g. step counting inside the merge join) gate that
//! arithmetic behind their own forwarded `telemetry` feature, so the
//! extra local additions vanish too.
//!
//! [`json`] is the dependency-free JSON reader/writer behind the
//! machine-readable `BENCH.json` artifact (see `lotus-bench`).

pub mod counters;
pub mod json;
pub mod span;
pub mod sync;

pub use counters::{Counter, CounterSnapshot};
pub use span::{Span, SpanId, SpanSnapshot, SpanStat};
pub use sync::{TracedCondvar, TracedGuard, TracedMutex, WitnessFilter, WitnessReport};

/// Whether this build records telemetry (`telemetry` feature).
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// One consistent snapshot of everything recorded so far: counters,
/// span timings, and the last degrade event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Work counter totals.
    pub counters: CounterSnapshot,
    /// Accumulated span wall times and enter counts.
    pub spans: SpanSnapshot,
    /// The most recent degrade-path description, if any run degraded.
    pub degrade: Option<String>,
}

/// Snapshots all recorded telemetry without resetting it.
#[must_use]
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: counters::snapshot(),
        spans: span::snapshot(),
        degrade: span::last_degrade(),
    }
}

/// Resets counters, spans, and the degrade record to zero. Benchmark
/// drivers call this between runs so each run's totals are isolated.
pub fn reset() {
    counters::reset();
    span::reset();
}

/// Serializes tests that mutate the global counter/span state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(enabled(), cfg!(feature = "telemetry"));
    }

    #[test]
    fn snapshot_is_consistent_with_parts() {
        let _guard = test_lock();
        reset();
        counters::add(Counter::TileVisits, 3);
        let s = snapshot();
        assert_eq!(
            s.counters.get(Counter::TileVisits),
            counters::get(Counter::TileVisits)
        );
        reset();
    }
}
