//! Scoped wall-clock spans per pipeline stage.
//!
//! A [`Span`] is entered at the top of a stage and records its elapsed
//! time when dropped. Because recording happens in `Drop`, the time is
//! captured even when the stage is cut short by cooperative cancellation
//! or unwinds into `catch_unwind` panic isolation — the resilience
//! layer's degrade paths stay visible in the telemetry instead of
//! vanishing with the failed phase.

use std::fmt;

/// A pipeline stage with its own accumulated span. Names are stable:
/// they are the keys of the `spans` object in `BENCH.json` (schema v1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanId {
    /// Algorithm 2: relabeling + HE/NHE/H2H construction.
    Preprocess,
    /// Phase 1: HHH + HHN over the H2H bit array.
    HhhHhn,
    /// Phase 2: HNN over the HE lists.
    Hnn,
    /// Phase 3: NNN over the NHE lists.
    Nnn,
    /// The forward-hashed driver of the memory-budget degrade path.
    Fallback,
    /// Graph loading / generation outside the counting pipeline.
    Io,
    /// One request executed by the `lotus-serve` worker pool, queue to
    /// response (recorded even when the request expires or panics).
    ServeRequest,
}

impl SpanId {
    /// Every span, in schema order.
    pub const ALL: [SpanId; 7] = [
        SpanId::Preprocess,
        SpanId::HhhHhn,
        SpanId::Hnn,
        SpanId::Nnn,
        SpanId::Fallback,
        SpanId::Io,
        SpanId::ServeRequest,
    ];

    /// The stable snake_case name used as the JSON key.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SpanId::Preprocess => "preprocess",
            SpanId::HhhHhn => "hhh_hhn",
            SpanId::Hnn => "hnn",
            SpanId::Nnn => "nnn",
            SpanId::Fallback => "fallback",
            SpanId::Io => "io",
            SpanId::ServeRequest => "serve_request",
        }
    }

    /// Resolves a stable name back to its span id.
    #[must_use]
    pub fn from_name(name: &str) -> Option<SpanId> {
        SpanId::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    use super::SpanId;

    struct Cell {
        nanos: AtomicU64,
        entries: AtomicU64,
    }

    static SPANS: [Cell; SpanId::ALL.len()] = [const {
        Cell {
            nanos: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }; SpanId::ALL.len()];

    static DEGRADE: Mutex<Option<String>> = Mutex::new(None);

    pub(super) fn record(id: SpanId, nanos: u64) {
        let cell = &SPANS[id as usize];
        cell.nanos.fetch_add(nanos, Ordering::Relaxed);
        cell.entries.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn read(id: SpanId) -> (u64, u64) {
        let cell = &SPANS[id as usize];
        (
            cell.nanos.load(Ordering::Relaxed),
            cell.entries.load(Ordering::Relaxed),
        )
    }

    pub(super) fn reset() {
        for cell in &SPANS {
            cell.nanos.store(0, Ordering::Relaxed);
            cell.entries.store(0, Ordering::Relaxed);
        }
        *DEGRADE.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    pub(super) fn record_degrade(reason: &str) {
        *DEGRADE.lock().unwrap_or_else(PoisonError::into_inner) = Some(reason.to_string());
    }

    pub(super) fn last_degrade() -> Option<String> {
        DEGRADE
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// An RAII guard timing one stage; records into the global span table on
/// drop. Without the `telemetry` feature this is a zero-sized no-op that
/// never reads the clock.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    #[cfg(feature = "telemetry")]
    id: SpanId,
    #[cfg(feature = "telemetry")]
    start: std::time::Instant,
}

impl Span {
    /// Enters the span for `id`.
    #[inline(always)]
    pub fn enter(id: SpanId) -> Span {
        #[cfg(not(feature = "telemetry"))]
        let _ = id;
        Span {
            #[cfg(feature = "telemetry")]
            id,
            #[cfg(feature = "telemetry")]
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "telemetry")]
        imp::record(self.id, self.start.elapsed().as_nanos() as u64);
    }
}

/// Records the degrade path taken by a budgeted run (also bumps the
/// `degraded_runs` counter). No-op without the `telemetry` feature.
pub fn record_degrade(reason: &str) {
    #[cfg(feature = "telemetry")]
    {
        imp::record_degrade(reason);
        crate::counters::incr(crate::Counter::DegradedRuns);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = reason;
}

/// The most recent degrade description, if any (always `None` without
/// the feature).
#[must_use]
pub fn last_degrade() -> Option<String> {
    #[cfg(feature = "telemetry")]
    return imp::last_degrade();
    #[cfg(not(feature = "telemetry"))]
    None
}

/// Accumulated time and enter count of one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Total nanoseconds across all entries.
    pub nanos: u64,
    /// How many times the span was entered.
    pub entries: u64,
}

impl SpanStat {
    /// Total span time in (fractional) milliseconds.
    #[must_use]
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// A point-in-time copy of every span's accumulated stat.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    values: Vec<(SpanId, SpanStat)>,
}

impl SpanSnapshot {
    /// The stat a span had when the snapshot was taken.
    #[must_use]
    pub fn get(&self, id: SpanId) -> SpanStat {
        self.values
            .iter()
            .find(|(k, _)| *k == id)
            .map_or(SpanStat::default(), |(_, v)| *v)
    }

    /// Iterates `(span, stat)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (SpanId, SpanStat)> + '_ {
        self.values.iter().copied()
    }
}

/// Copies every span's accumulated time and entry count.
#[must_use]
pub fn snapshot() -> SpanSnapshot {
    SpanSnapshot {
        values: SpanId::ALL
            .into_iter()
            .map(|id| {
                #[cfg(feature = "telemetry")]
                let (nanos, entries) = imp::read(id);
                #[cfg(not(feature = "telemetry"))]
                let (nanos, entries) = (0, 0);
                (id, SpanStat { nanos, entries })
            })
            .collect(),
    }
}

/// Zeroes every span and clears the degrade record.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    imp::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for s in SpanId::ALL {
            assert_eq!(SpanId::from_name(s.name()), Some(s));
        }
        let mut names: Vec<_> = SpanId::ALL.iter().map(SpanId::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SpanId::ALL.len());
    }

    #[test]
    fn span_records_iff_feature_enabled() {
        let _guard = crate::test_lock();
        reset();
        {
            let _s = Span::enter(SpanId::Hnn);
            std::hint::black_box(1 + 1);
        }
        let stat = snapshot().get(SpanId::Hnn);
        if crate::enabled() {
            assert_eq!(stat.entries, 1);
        } else {
            assert_eq!(stat, SpanStat::default());
        }
        reset();
        assert_eq!(snapshot().get(SpanId::Hnn).entries, 0);
    }

    #[test]
    fn span_survives_unwind() {
        let _guard = crate::test_lock();
        reset();
        let caught = std::panic::catch_unwind(|| {
            let _s = Span::enter(SpanId::Nnn);
            panic!("boom");
        });
        assert!(caught.is_err());
        if crate::enabled() {
            assert_eq!(snapshot().get(SpanId::Nnn).entries, 1);
        }
        reset();
    }

    #[test]
    fn degrade_record_round_trips() {
        let _guard = crate::test_lock();
        reset();
        assert_eq!(last_degrade(), None);
        record_degrade("shrunk hub set 512 -> 64");
        if crate::enabled() {
            assert_eq!(last_degrade().as_deref(), Some("shrunk hub set 512 -> 64"));
            assert_eq!(crate::counters::get(crate::Counter::DegradedRuns), 1);
        } else {
            assert_eq!(last_degrade(), None);
        }
        reset();
        assert_eq!(last_degrade(), None);
    }

    #[test]
    fn stat_millis() {
        let s = SpanStat {
            nanos: 2_500_000,
            entries: 1,
        };
        assert!((s.millis() - 2.5).abs() < 1e-12);
    }
}
