//! Instrumented lock wrappers — the runtime half of lock-discipline
//! certification (`lotus analyze locks`).
//!
//! [`TracedMutex`] and [`TracedCondvar`] wrap their `std::sync`
//! counterparts and give each lock a stable, human-chosen name (e.g.
//! `serve.store.durable`). While the witness is armed — any
//! `debug_assertions` build, or release with the `lock-witness` feature
//! — every acquisition records *order edges*: for each lock the
//! acquiring thread already holds, an edge `held → acquired` lands in a
//! process-global edge set. The edge set is the dynamic lock-order
//! graph:
//!
//! * at process exit a `.fini_array` destructor asserts the graph is
//!   acyclic (a cycle means two call paths disagree about lock order —
//!   an ABBA deadlock candidate that merely hasn't interleaved yet) and,
//!   when `LOTUS_LOCK_WITNESS=<path>` is set, writes the graph as
//!   `lock-order.json`;
//! * `lotus analyze locks` cross-checks that every dynamic edge is also
//!   present in the *static* lock-order graph extracted by
//!   `lotus-analyzer`, so the static pass provably sees the locks the
//!   test suite actually exercises.
//!
//! Re-locking a mutex the thread already holds would deadlock in
//! `std`; the armed witness panics immediately instead, with both lock
//! names in the message.
//!
//! Names starting with a reserved prefix (`planted.`, `golden.`) are
//! negative-control fixtures and scripted test scenarios; they are
//! excluded from the exit assertion and the default report so a planted
//! ABBA cycle can prove the detector fires without failing the suite.
//!
//! When the witness is disarmed (release build without `lock-witness`)
//! every recording body is empty and the wrappers are plain newtypes
//! around `std::sync` — no atomics, no thread-locals, no edges.

use crate::json::Json;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

/// Lock names beginning with one of these are test fixtures, kept out
/// of the exit assertion and the default report.
pub const RESERVED_PREFIXES: [&str; 2] = ["planted.", "golden."];

/// Whether this build records lock acquisitions (`debug_assertions` or
/// the `lock-witness` feature).
#[must_use]
pub const fn witness_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "lock-witness"))
}

// ---------------------------------------------------------------------------
// Global witness state
// ---------------------------------------------------------------------------

#[cfg(any(debug_assertions, feature = "lock-witness"))]
mod state {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::{Mutex, PoisonError};

    /// Interned lock names (index = lock id) plus the directed edge set
    /// `held → acquired`. One plain `std` mutex; the witness never
    /// acquires a traced lock, so it cannot feed back into itself.
    pub(super) struct Witness {
        pub(super) names: Vec<&'static str>,
        pub(super) edges: BTreeSet<(u32, u32)>,
    }

    pub(super) static WITNESS: Mutex<Witness> = Mutex::new(Witness {
        names: Vec::new(),
        edges: BTreeSet::new(),
    });

    thread_local! {
        /// Lock ids this thread currently holds, in acquisition order.
        pub(super) static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    }

    /// Interns `name`, records an edge from every lock this thread
    /// already holds, pushes the new id onto the held stack, and
    /// returns the id. Panics (before blocking) on a same-thread
    /// re-lock, which would deadlock in `std`.
    pub(super) fn enter(name: &'static str) -> u32 {
        let id = {
            let mut w = WITNESS.lock().unwrap_or_else(PoisonError::into_inner);
            let id = match w.names.iter().position(|n| *n == name) {
                Some(i) => i as u32,
                None => {
                    w.names.push(name);
                    (w.names.len() - 1) as u32
                }
            };
            let relock = HELD.with(|h| {
                let held = h.borrow();
                if held.contains(&id) {
                    return true;
                }
                for &from in held.iter() {
                    w.edges.insert((from, id));
                }
                false
            });
            if relock {
                drop(w);
                // analyzer: allow(no-panic): the witness exists to turn a self-deadlock into a loud failure before the thread hangs
                panic!("lock-witness: thread re-locked '{name}' while already holding it");
            }
            id
        };
        HELD.with(|h| h.borrow_mut().push(id));
        id
    }

    /// Pops one held entry for `id` (the most recent — guards may be
    /// dropped out of LIFO order, e.g. via `drop(g)`).
    pub(super) fn exit(id: u32) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// TracedMutex
// ---------------------------------------------------------------------------

/// A named [`Mutex`] that records acquisition-order edges while the
/// witness is armed. Drop-in for the `lock().unwrap_or_else(..)` idiom:
/// poison carries through as `PoisonError<TracedGuard>`.
pub struct TracedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

/// The guard returned by [`TracedMutex::lock`]; releases the witness
/// entry when dropped.
pub struct TracedGuard<'a, T> {
    name: &'static str,
    id: u32,
    inner: MutexGuard<'a, T>,
}

impl<T> TracedMutex<T> {
    /// Wraps `value` in a mutex named `name`. The name is the node id
    /// in `lock-order.json` and must match the literal the static pass
    /// extracts, so pick a stable dotted path (`serve.pool.queue`).
    pub const fn new(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: Mutex::new(value),
        }
    }

    /// The witness name this lock was created with.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recording order edges first (so an edge is
    /// present even for an acquisition that then blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates poisoning exactly like [`Mutex::lock`].
    pub fn lock(&self) -> LockResult<TracedGuard<'_, T>> {
        #[cfg(any(debug_assertions, feature = "lock-witness"))]
        let id = state::enter(self.name);
        #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
        let id = 0;
        match self.inner.lock() {
            Ok(g) => Ok(TracedGuard {
                name: self.name,
                id,
                inner: g,
            }),
            Err(p) => Err(PoisonError::new(TracedGuard {
                name: self.name,
                id,
                inner: p.into_inner(),
            })),
        }
    }

    /// Consumes the mutex, returning the inner value (never blocks).
    ///
    /// # Errors
    ///
    /// Propagates poisoning exactly like [`Mutex::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T> std::ops::Deref for TracedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TracedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TracedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "lock-witness"))]
        state::exit(self.id);
        // Disarmed builds: self.id is a dead 0; nothing to release.
        #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
        let _ = self.id;
    }
}

impl<T: fmt::Debug> fmt::Debug for TracedGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedGuard")
            .field("name", &self.name)
            .field("value", &*self.inner)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// TracedCondvar
// ---------------------------------------------------------------------------

/// A named [`Condvar`] aware of [`TracedGuard`]: waiting releases the
/// witness entry for the passed guard and re-records it on wake, so the
/// held stack mirrors what `std` actually holds.
pub struct TracedCondvar {
    name: &'static str,
    inner: Condvar,
}

impl TracedCondvar {
    /// Creates a condvar named `name` (names share the lock namespace
    /// but condvars are not lock-order nodes).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            inner: Condvar::new(),
        }
    }

    /// The witness name this condvar was created with.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Blocks on the condvar, atomically releasing `guard`'s mutex.
    ///
    /// # Errors
    ///
    /// Propagates poisoning exactly like [`Condvar::wait`].
    pub fn wait<'a, T>(&self, guard: TracedGuard<'a, T>) -> LockResult<TracedGuard<'a, T>> {
        let (name, id, inner) = guard.into_parts();
        let waited = self.inner.wait(inner);
        Self::reenter(name, id, waited)
    }

    /// Blocks with a timeout, atomically releasing `guard`'s mutex.
    /// Returns the re-acquired guard and whether the wait timed out.
    ///
    /// # Errors
    ///
    /// Propagates poisoning exactly like [`Condvar::wait_timeout`].
    pub fn wait_timeout<'a, T>(
        &self,
        guard: TracedGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(TracedGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        let (name, id, inner) = guard.into_parts();
        match self.inner.wait_timeout(inner, dur) {
            Ok((g, timed_out)) => match Self::reenter(name, id, Ok(g)) {
                Ok(tg) => Ok((tg, timed_out)),
                Err(p) => Err(PoisonError::new((p.into_inner(), timed_out))),
            },
            Err(p) => {
                let (g, timed_out) = p.into_inner();
                match Self::reenter(name, id, Ok(g)) {
                    Ok(tg) => Err(PoisonError::new((tg, timed_out))),
                    Err(p2) => Err(PoisonError::new((p2.into_inner(), timed_out))),
                }
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    fn reenter<'a, T>(
        name: &'static str,
        disarmed_id: u32,
        waited: LockResult<MutexGuard<'a, T>>,
    ) -> LockResult<TracedGuard<'a, T>> {
        #[cfg(any(debug_assertions, feature = "lock-witness"))]
        let id = state::enter(name);
        #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
        let id = disarmed_id;
        #[cfg(any(debug_assertions, feature = "lock-witness"))]
        let _ = disarmed_id;
        match waited {
            Ok(g) => Ok(TracedGuard { name, id, inner: g }),
            Err(p) => Err(PoisonError::new(TracedGuard {
                name,
                id,
                inner: p.into_inner(),
            })),
        }
    }
}

impl fmt::Debug for TracedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracedCondvar")
            .field("name", &self.name)
            .finish()
    }
}

impl<'a, T> TracedGuard<'a, T> {
    /// Splits into parts for a condvar wait, releasing the witness
    /// entry (the mutex itself is released by `Condvar::wait`).
    fn into_parts(self) -> (&'static str, u32, MutexGuard<'a, T>) {
        #[cfg(any(debug_assertions, feature = "lock-witness"))]
        state::exit(self.id);
        let me = std::mem::ManuallyDrop::new(self);
        // SAFETY: `me` is never dropped (ManuallyDrop), so the guard is
        // moved out exactly once and Drop::drop never observes it.
        let inner = unsafe { std::ptr::read(&me.inner) };
        (me.name, me.id, inner)
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// A snapshot of the dynamic lock-order graph: every named lock seen so
/// far and the recorded `held → acquired` edges, both sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessReport {
    /// Lock names that appeared in at least one recorded acquisition.
    pub nodes: Vec<String>,
    /// Directed order edges `(held, acquired)`.
    pub edges: Vec<(String, String)>,
}

/// Which lock names a [`witness_report`] snapshot includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessFilter<'a> {
    /// Everything except [`RESERVED_PREFIXES`] fixtures — the report
    /// the exit assertion and CI artifact use.
    Default,
    /// Only names starting with this prefix — how a test scopes the
    /// global edge set down to its own scripted scenario.
    Prefix(&'a str),
}

/// Snapshots the recorded edge set. Always empty when the witness is
/// disarmed.
#[must_use]
pub fn witness_report(filter: WitnessFilter<'_>) -> WitnessReport {
    #[cfg(any(debug_assertions, feature = "lock-witness"))]
    {
        let w = state::WITNESS
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let keep = |name: &str| match filter {
            WitnessFilter::Default => !RESERVED_PREFIXES.iter().any(|p| name.starts_with(p)),
            WitnessFilter::Prefix(p) => name.starts_with(p),
        };
        let mut nodes = BTreeSet::new();
        let mut edges = BTreeSet::new();
        for &(from, to) in &w.edges {
            let (f, t) = (w.names[from as usize], w.names[to as usize]);
            if keep(f) && keep(t) {
                nodes.insert(f.to_string());
                nodes.insert(t.to_string());
                edges.insert((f.to_string(), t.to_string()));
            }
        }
        WitnessReport {
            nodes: nodes.into_iter().collect(),
            edges: edges.into_iter().collect(),
        }
    }
    #[cfg(not(any(debug_assertions, feature = "lock-witness")))]
    {
        let _ = filter;
        WitnessReport::default()
    }
}

impl WitnessReport {
    /// Finds a cycle, returned as a lock-name path whose last element
    /// equals its first (`["a", "b", "a"]`), or `None` if acyclic.
    #[must_use]
    pub fn cycle(&self) -> Option<Vec<String>> {
        // Iterative DFS with white/grey/black coloring over the sorted
        // node list, so the reported cycle is deterministic.
        let index = |name: &str| self.nodes.iter().position(|n| n == name);
        let n = self.nodes.len();
        let mut succ = vec![Vec::new(); n];
        for (from, to) in &self.edges {
            if let (Some(f), Some(t)) = (index(from), index(to)) {
                succ[f].push(t);
            }
        }
        let mut color = vec![0u8; n]; // 0 white, 1 grey, 2 black
        let mut parent = vec![usize::MAX; n];
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            color[root] = 1;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < succ[v].len() {
                    let w = succ[v][*next];
                    *next += 1;
                    match color[w] {
                        0 => {
                            color[w] = 1;
                            parent[w] = v;
                            stack.push((w, 0));
                        }
                        1 => {
                            // Back edge v → w closes a cycle.
                            let mut path = vec![self.nodes[w].clone()];
                            let mut cur = v;
                            let mut rev = Vec::new();
                            while cur != w {
                                rev.push(self.nodes[cur].clone());
                                cur = parent[cur];
                            }
                            rev.reverse();
                            path.extend(rev);
                            path.push(self.nodes[w].clone());
                            return Some(path);
                        }
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// `true` when [`WitnessReport::cycle`] finds nothing.
    #[must_use]
    pub fn is_acyclic(&self) -> bool {
        self.cycle().is_none()
    }

    /// Serializes as the `lock-order.json` artifact (stable ordering,
    /// two-space pretty format with a trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let edges = self
            .edges
            .iter()
            .map(|(f, t)| {
                Json::Obj(vec![
                    ("from".into(), Json::Str(f.clone())),
                    ("to".into(), Json::Str(t.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(1)),
            ("tool".into(), Json::Str("lotus-analyzer".into())),
            ("mode".into(), Json::Str("lock-witness".into())),
            (
                "nodes".into(),
                Json::Arr(self.nodes.iter().cloned().map(Json::Str).collect()),
            ),
            ("edges".into(), Json::Arr(edges)),
            ("acyclic".into(), Json::Bool(self.is_acyclic())),
        ])
        .pretty()
    }
}

// ---------------------------------------------------------------------------
// Process-exit assertion
// ---------------------------------------------------------------------------

/// Runs the exit-time witness check now: writes the default report to
/// `$LOTUS_LOCK_WITNESS` when that variable is set, and aborts with the
/// cycle path on stderr if the recorded graph (fixtures excluded) has a
/// cycle. Called automatically from a `.fini_array` destructor on
/// Linux; exposed so tests and non-Linux targets can invoke it.
pub fn witness_exit_check() {
    if !witness_enabled() {
        return;
    }
    let report = witness_report(WitnessFilter::Default);
    if let Ok(path) = std::env::var("LOTUS_LOCK_WITNESS") {
        if !path.is_empty() {
            // Best-effort: exit-path diagnostics must not panic.
            let _ = std::fs::write(&path, report.to_json());
        }
    }
    if let Some(path) = report.cycle() {
        eprintln!(
            "lock-witness: lock-order cycle observed at process exit: {}",
            path.join(" -> ")
        );
        std::process::abort();
    }
}

#[cfg(all(target_os = "linux", any(debug_assertions, feature = "lock-witness")))]
mod exit_hook {
    /// Registered in `.fini_array` so the check runs after `main` (and
    /// after libtest harnesses) without an atexit dependency.
    // SAFETY: `.fini_array` holds `extern "C" fn()` pointers the loader
    // invokes at process exit; `run` has exactly that ABI and signature
    // and never unwinds across the FFI boundary.
    #[used]
    #[unsafe(link_section = ".fini_array")]
    static WITNESS_EXIT_CHECK: extern "C" fn() = run;

    extern "C" fn run() {
        super::witness_exit_check();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_deref_and_release() {
        let m = TracedMutex::new("golden.sync.basic", 5usize);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 6);
        assert_eq!(m.name(), "golden.sync.basic");
        assert_eq!(m.into_inner().unwrap(), 6);
    }

    #[test]
    fn records_order_edges() {
        let a = TracedMutex::new("golden.sync.order-a", ());
        let b = TracedMutex::new("golden.sync.order-b", ());
        let ga = a.lock().unwrap();
        let gb = b.lock().unwrap();
        drop(gb);
        drop(ga);
        let report = witness_report(WitnessFilter::Prefix("golden.sync.order-"));
        if witness_enabled() {
            assert_eq!(
                report.edges,
                vec![(
                    "golden.sync.order-a".to_string(),
                    "golden.sync.order-b".to_string()
                )]
            );
            assert!(report.is_acyclic());
        } else {
            assert!(report.edges.is_empty());
        }
    }

    #[test]
    fn non_lifo_drop_releases_the_right_entry() {
        let a = TracedMutex::new("golden.sync.fifo-a", ());
        let b = TracedMutex::new("golden.sync.fifo-b", ());
        let c = TracedMutex::new("golden.sync.fifo-c", ());
        let ga = a.lock().unwrap();
        let gb = b.lock().unwrap();
        drop(ga); // out of LIFO order
        let gc = c.lock().unwrap();
        drop(gc);
        drop(gb);
        let report = witness_report(WitnessFilter::Prefix("golden.sync.fifo-"));
        if witness_enabled() {
            // a→b from the nested acquire; b→c after a was dropped. No
            // a→c: a was no longer held when c was taken.
            assert_eq!(
                report.edges,
                vec![
                    ("golden.sync.fifo-a".into(), "golden.sync.fifo-b".into()),
                    ("golden.sync.fifo-b".into(), "golden.sync.fifo-c".into()),
                ]
            );
        }
    }

    #[test]
    fn planted_abba_cycle_is_detected_and_quarantined() {
        if !witness_enabled() {
            return;
        }
        let a = TracedMutex::new("planted.witness.abba-a", ());
        let b = TracedMutex::new("planted.witness.abba-b", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        let planted = witness_report(WitnessFilter::Prefix("planted.witness.abba-"));
        let path = planted
            .cycle()
            .expect("planted control 'witness-abba' was missed: no cycle reported");
        assert_eq!(path.first(), path.last());
        assert!(!planted.is_acyclic());
        // The default report must not see the planted fixture, or the
        // exit assertion would fail the whole suite.
        let default = witness_report(WitnessFilter::Default);
        assert!(default
            .nodes
            .iter()
            .all(|n| !n.starts_with("planted.witness.abba-")));
    }

    #[test]
    fn planted_relock_panics_instead_of_deadlocking() {
        if !witness_enabled() {
            return;
        }
        let m = std::sync::Arc::new(TracedMutex::new("planted.witness.relock", ()));
        let g = m.lock().unwrap();
        let m2 = std::sync::Arc::clone(&m);
        let err = std::panic::catch_unwind(move || {
            let _ = m2.lock();
        })
        .expect_err("planted control 'witness-relock' was missed: re-lock did not panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("planted.witness.relock"), "message: {msg}");
        drop(g);
        // The failed acquisition must not have leaked a held entry.
        let _g2 = m.lock().unwrap();
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_witness_entry() {
        let m = std::sync::Arc::new(TracedMutex::new("golden.sync.cv-lock", false));
        let cv = std::sync::Arc::new(TracedCondvar::new("golden.sync.cv"));
        assert_eq!(cv.name(), "golden.sync.cv");
        let (m2, cv2) = (std::sync::Arc::clone(&m), std::sync::Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g = true;
            cv2.notify_all();
        });
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
        // A short timed wait exercises the timeout path too.
        let g = m.lock().unwrap();
        let (g, timed_out) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(timed_out.timed_out());
        drop(g);
        cv.notify_one();
    }

    #[test]
    fn report_json_is_stable_and_marks_acyclicity() {
        let a = TracedMutex::new("golden.sync.json-a", ());
        let b = TracedMutex::new("golden.sync.json-b", ());
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        let report = witness_report(WitnessFilter::Prefix("golden.sync.json-"));
        let json = report.to_json();
        if witness_enabled() {
            assert_eq!(
                json,
                "{\n  \"schema_version\": 1,\n  \"tool\": \"lotus-analyzer\",\n  \"mode\": \"lock-witness\",\n  \"nodes\": [\n    \"golden.sync.json-a\",\n    \"golden.sync.json-b\"\n  ],\n  \"edges\": [\n    {\n      \"from\": \"golden.sync.json-a\",\n      \"to\": \"golden.sync.json-b\"\n    }\n  ],\n  \"acyclic\": true\n}\n"
            );
        }
        let parsed = crate::json::parse(&json).expect("witness report must be valid JSON");
        assert_eq!(
            parsed.get("mode").and_then(Json::as_str),
            Some("lock-witness")
        );
    }

    #[test]
    fn exit_check_is_callable() {
        // Must not abort on the (acyclic) state accumulated by this
        // test binary; planted fixtures are filtered out.
        witness_exit_check();
    }
}
