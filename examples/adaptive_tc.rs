//! Adaptive algorithm selection (paper §5.5): check the degree
//! distribution first and fall back to Forward when the graph is not
//! skewed enough for LOTUS to pay off.
//!
//! ```text
//! cargo run --release --example adaptive_tc
//! ```

use lotus::core::adaptive::{adaptive_count, AdaptiveConfig, ChosenAlgorithm};
use lotus::gen::{ErdosRenyi, Rmat, WattsStrogatz};
use lotus::prelude::*;
use lotus_graph::UndirectedCsr as G;

fn describe(name: &str, graph: &G) {
    let r = adaptive_count(graph, &LotusConfig::auto(graph), &AdaptiveConfig::default());
    let path = match r.algorithm {
        ChosenAlgorithm::Lotus => "LOTUS (skewed)",
        ChosenAlgorithm::Forward => "Forward (uniform)",
    };
    println!(
        "{name:<22} skew-ratio {:>6.2}  ->  {path:<18} {} triangles",
        r.skew_ratio, r.triangles
    );
    if let Some(lotus) = r.lotus {
        println!(
            "{:<22} hub share {:.1}%, breakdown {}",
            "",
            lotus.stats.hub_triangle_fraction() * 100.0,
            lotus.breakdown
        );
    }
}

fn main() {
    println!("dispatcher threshold: mean > 2.0 x median degree\n");

    // Power-law graphs: the LOTUS sweet spot.
    describe("R-MAT social network", &Rmat::new(14, 16).generate(1));
    describe(
        "R-MAT web crawl",
        &Rmat::new(14, 24)
            .with_params(lotus::gen::RmatParams::WEB)
            .generate(2),
    );

    // Uniform graphs: hubs carry nothing; Forward is the right tool.
    describe("Erdos-Renyi", &ErdosRenyi::new(16_384, 260_000).generate(3));
    describe(
        "Watts-Strogatz ring",
        &WattsStrogatz::new(16_384, 16, 0.1).generate(4),
    );
}
