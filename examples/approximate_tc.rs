//! Approximate triangle counting with DOULION (paper §6.2 context):
//! trade accuracy for speed by sparsifying before counting exactly.
//!
//! ```text
//! cargo run --release --example approximate_tc
//! ```

use std::time::Instant;

use lotus::algos::doulion::doulion_estimate;
use lotus::gen::Rmat;
use lotus::prelude::*;

fn main() {
    let graph = Rmat::new(15, 16).generate(2024);
    println!(
        "graph: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let start = Instant::now();
    let exact = LotusCounter::new(LotusConfig::auto(&graph))
        .count(&graph)
        .total();
    let exact_time = start.elapsed();
    println!(
        "exact (LOTUS): {exact} triangles in {:.3}s\n",
        exact_time.as_secs_f64()
    );

    println!(
        "{:>5}  {:>12}  {:>8}  {:>8}  {:>9}",
        "p", "estimate", "error%", "time(s)", "edges"
    );
    for p in [0.05, 0.1, 0.2, 0.5] {
        let start = Instant::now();
        let est = doulion_estimate(&graph, p, 7);
        let t = start.elapsed().as_secs_f64();
        let err = (est.estimate - exact as f64).abs() / exact as f64 * 100.0;
        println!(
            "{p:>5.2}  {:>12.0}  {err:>7.1}%  {t:>8.3}  {:>9}",
            est.estimate, est.kept_edges
        );
    }
    println!("\nEach estimate counts exactly on a p-sparsified graph and rescales");
    println!("by 1/p^3 (unbiased); error shrinks as p -> 1.");
}
