//! k-clique counting (paper §7, future work): triangles are 3-cliques,
//! and the hub skew sharpens as k grows.
//!
//! ```text
//! cargo run --release --example kcliques
//! ```

use lotus::core::kclique::{count_kcliques, count_kcliques_split};
use lotus::gen::Rmat;
use lotus::prelude::*;

fn main() {
    let graph = Rmat::new(13, 16).generate(4);
    println!(
        "graph: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let config = LotusConfig::auto(&graph);
    println!("{:>3}  {:>14}  {:>10}", "k", "k-cliques", "hub share");
    for k in 3..=6 {
        let split = count_kcliques_split(&graph, k, &config);
        println!(
            "{k:>3}  {:>14}  {:>9.1}%",
            split.total(),
            split.hub_fraction() * 100.0
        );
        // Sanity: the split agrees with the direct count.
        assert_eq!(split.total(), count_kcliques(&graph, k));
    }
    println!("\nThe hub share grows with k — the paper's §7 hypothesis: hub");
    println!("skew becomes even more pronounced for larger cliques.");
}
