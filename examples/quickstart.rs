//! Quickstart: count triangles with LOTUS and verify against the Forward
//! baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lotus::prelude::*;

fn main() {
    // 1. Build a graph — here a skewed R-MAT graph with 2^14 vertices,
    //    the regime LOTUS is designed for. Any edge source works; see
    //    `GraphBuilder` for programmatic construction and `lotus::graph::io`
    //    for file loading.
    let graph: UndirectedCsr = lotus::gen::Rmat::new(14, 16).generate(42);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Count with LOTUS. `LotusConfig::auto` picks a hub count suited to
    //    the graph size; `LotusConfig::paper()` reproduces the paper's
    //    fixed 64K hubs.
    let result = LotusCounter::new(LotusConfig::auto(&graph)).count(&graph);
    println!("triangles: {}", result.total());
    println!("breakdown: {}", result.breakdown);
    println!(
        "types: HHH={} HHN={} HNN={} NNN={} (hub share {:.1}%)",
        result.stats.hhh,
        result.stats.hhn,
        result.stats.hnn,
        result.stats.nnn,
        result.stats.hub_triangle_fraction() * 100.0
    );

    // 3. Cross-check with the Forward algorithm (paper Algorithm 1).
    let baseline = forward_count(&graph);
    assert_eq!(result.total(), baseline);
    println!("forward baseline agrees: {baseline}");
}
