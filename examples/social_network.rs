//! Social-network analysis: clustering coefficients and community
//! cohesion from triangle counts.
//!
//! Triangle counting's flagship application (the paper's introduction
//! cites social-capital and community-detection work): a user's local
//! clustering coefficient measures how interconnected their friends are.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use lotus::algos::counts::{average_clustering, local_clustering_coefficients, transitivity};
use lotus::algos::forward::per_vertex_counts;
use lotus::gen::BarabasiAlbert;
use lotus::prelude::*;

fn main() {
    // A preferential-attachment network: early joiners become hubs, as in
    // real social graphs.
    let network = BarabasiAlbert::new(20_000, 8).generate(7);
    println!(
        "network: {} users, {} friendships",
        network.num_vertices(),
        network.num_edges()
    );

    // Global structure.
    let result = LotusCounter::new(LotusConfig::auto(&network)).count(&network);
    println!("total triangles: {}", result.total());
    println!("transitivity:     {:.4}", transitivity(&network));
    println!("avg clustering:   {:.4}", average_clustering(&network));

    // Per-user triangle participation: who sits in the most closed triads?
    let triangles = per_vertex_counts(&network);
    let mut ranked: Vec<(u32, u64)> = (0..network.num_vertices())
        .map(|v| (v, triangles[v as usize]))
        .collect();
    ranked.sort_unstable_by_key(|&(v, t)| (std::cmp::Reverse(t), v));
    println!("\ntop 5 users by closed triads:");
    for &(v, t) in ranked.iter().take(5) {
        println!(
            "  user {v:>6}: {t:>6} triangles, degree {}",
            network.degree(v)
        );
    }

    // Clustering vs degree: hubs bridge many communities, so their own
    // neighbourhoods are sparse — the classic c(k) ~ k^-1 decay.
    let coeffs = local_clustering_coefficients(&network);
    let hub = ranked[0].0;
    let leafish = (0..network.num_vertices())
        .filter(|&v| network.degree(v) == 8)
        .max_by(|&a, &b| {
            coeffs[a as usize]
                .partial_cmp(&coeffs[b as usize])
                .expect("finite")
        })
        .expect("min-degree vertex exists");
    println!(
        "\nhub user {hub}: degree {}, clustering {:.4}",
        network.degree(hub),
        coeffs[hub as usize]
    );
    println!(
        "tight user {leafish}: degree {}, clustering {:.4}",
        network.degree(leafish),
        coeffs[leafish as usize]
    );
}
