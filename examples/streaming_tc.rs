//! Streaming triangle counting with the resident H2H bit array
//! (paper §6.2).
//!
//! Edges arrive in batches; every insertion reports the triangles it
//! closes. Hub–hub adjacency tests are O(1) probes of the in-memory H2H
//! array — the acceleration the paper proposes for streaming settings.
//!
//! ```text
//! cargo run --release --example streaming_tc
//! ```

use lotus::core::streaming::StreamingLotus;
use lotus::gen::Rmat;
use lotus::prelude::*;

fn main() {
    // The "stream": a skewed graph's edges, arriving in arrival order.
    let edges = Rmat::new(13, 16).generate_edges(99);
    let num_vertices = edges.num_vertices();
    println!(
        "stream: {} edges over {} vertices, 10 batches\n",
        edges.len(),
        num_vertices
    );

    let mut counter = StreamingLotus::from_degree_estimate(num_vertices);
    println!(
        "hub set: first {} IDs, H2H = {} KB resident",
        counter.hub_count(),
        counter.h2h().size_bytes() / 1024
    );

    let pairs = edges.pairs();
    let batch = pairs.len().div_ceil(10);
    for (i, chunk) in pairs.chunks(batch).enumerate() {
        let closed = counter.insert_batch(chunk.iter().copied());
        println!(
            "batch {:>2}: +{:>7} edges, +{:>9} triangles  (total {:>10}, H2H density {:.3}%)",
            i + 1,
            chunk.len(),
            closed,
            counter.triangles(),
            counter.h2h().density() * 100.0
        );
    }

    // Verify against a batch LOTUS run over the final graph.
    let graph = lotus::graph::UndirectedCsr::from_canonical_edges(&edges);
    let batch_count = LotusCounter::new(LotusConfig::auto(&graph))
        .count(&graph)
        .total();
    assert_eq!(counter.triangles(), batch_count);
    println!("\nbatch LOTUS agrees: {batch_count} triangles");
}
