//! Web-graph analysis: hub structure and why LOTUS wins on crawls.
//!
//! Web graphs are the paper's best case (Table 5: up to 8× over GAP on
//! UK-Delis): hub pages attract most links and hub-to-hub edges form an
//! extremely dense core. This example reproduces the motivation analysis
//! of §3 on a synthetic crawl and then shows the LOTUS structure and
//! per-phase behaviour.
//!
//! ```text
//! cargo run --release --example web_graph
//! ```

use lotus::analysis::hub_stats::hub_stats;
use lotus::analysis::topology_size::topology_sizes;
use lotus::core::preprocess::build_lotus_graph;
use lotus::gen::{Rmat, RmatParams};
use lotus::prelude::*;

fn main() {
    let crawl = Rmat::new(16, 32)
        .with_params(RmatParams::WEB)
        .generate(2022);
    println!(
        "crawl: {} pages, {} links",
        crawl.num_vertices(),
        crawl.num_edges()
    );

    // §3 motivation: 1% of pages as hubs.
    let s = hub_stats(&crawl, 0.01);
    println!("\nhub analysis (top 1% of pages = {} hubs):", s.hub_count);
    println!("  hub-to-hub edges:     {:>5.1}%", s.hub_to_hub * 100.0);
    println!("  hub-to-non-hub edges: {:>5.1}%", s.hub_to_nonhub * 100.0);
    println!("  triangles with a hub: {:>5.1}%", s.hub_triangles * 100.0);
    println!(
        "  hub sub-graph is {:.0}x denser than the crawl",
        s.relative_density
    );
    println!("  avoidable hub-edge accesses: {:.1}%", s.fruitless * 100.0);

    // The LOTUS structure for this crawl.
    let config = LotusConfig::auto(&crawl);
    let lg = build_lotus_graph(&crawl, &config);
    let sizes = topology_sizes(&crawl, &lg);
    println!("\nLOTUS structure ({} hubs):", lg.hub_count);
    println!("  HE edges (16-bit):  {}", lg.he_edges());
    println!("  NHE edges (32-bit): {}", lg.nhe_edges());
    println!(
        "  H2H bit array:      {} KB, density {:.2}%",
        lg.h2h.size_bytes() / 1024,
        lg.h2h.density() * 100.0
    );
    println!(
        "  topology: CSX {:.1} MB -> LOTUS {:.1} MB ({:+.1}%)",
        sizes.csx as f64 / 1e6,
        sizes.lotus as f64 / 1e6,
        sizes.growth_percent()
    );

    // Count and show where the time goes (paper Figure 6).
    let result = LotusCounter::new(config).count_prepared(&lg);
    println!("\ntriangles: {}", result.total());
    println!("phases: {}", result.breakdown);
    println!(
        "hub triangles: {:.1}% of all",
        result.stats.hub_triangle_fraction() * 100.0
    );
}
