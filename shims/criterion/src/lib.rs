//! Minimal timing harness exposing the subset of the `criterion` API the
//! workspace's benches use, so `cargo bench` works offline.
//!
//! The root manifest renames this package to the `criterion` dependency
//! key, so bench files keep their `use criterion::{...}` imports. The
//! harness runs each benchmark for the configured measurement time and
//! prints mean wall-clock per iteration — no statistics, plots, or
//! baselines, just enough to exercise and smoke-compare the kernels.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves like the real crate.
pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_id.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `(total_elapsed, iterations)` of the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly for the configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time {
                self.result = Some((elapsed, iters));
                return;
            }
        }
    }
}

fn run_bench(
    id: &str,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measurement_time,
        warm_up_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!("{id:<50} {:>12.3} µs/iter ({iters} iters)", per_iter * 1e6);
        }
        None => println!("{id:<50} (no measurement)"),
    }
}

/// A named group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(
            &format!("{}/{id}", self.name),
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{id}", self.name),
            self.measurement_time,
            self.warm_up_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing happens eagerly; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(
            &id.to_string(),
            Duration::from_secs(2),
            Duration::from_millis(500),
            f,
        );
        self
    }
}

/// Declares a group of benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut b = Bencher {
            measurement_time: Duration::from_millis(5),
            warm_up_time: Duration::ZERO,
            result: None,
        };
        let mut runs = 0u64;
        b.iter(|| runs += 1);
        let (elapsed, iters) = b.result.expect("measured");
        assert!(iters >= 1);
        assert_eq!(iters, runs);
        assert!(elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("alg", 32).to_string(), "alg/32");
        assert_eq!(BenchmarkId::from_parameter("web").to_string(), "web");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(1));
        group.warm_up_time(Duration::ZERO);
        group.sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("in", 3), &3u32, |b, &x| {
            ran = true;
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(ran);
    }
}
