//! Std-only nonblocking readiness shim for the LOTUS serving layer.
//!
//! The workspace builds with no network access, so this crate plays the
//! role `mio`/`polling` would otherwise fill (the same offline-shim
//! style as `shims/par`): a [`Poller`] that multiplexes socket
//! readiness for thousands of connections on a handful of threads, plus
//! a [`Waker`] other threads use to interrupt a blocked wait.
//!
//! Two backends sit behind one API:
//!
//! - **epoll** (Linux x86-64): the real readiness queue, driven by raw
//!   `epoll_create1` / `epoll_ctl` / `epoll_pwait` syscalls — std does
//!   not expose epoll and no `libc` crate is available offline, so the
//!   three syscalls are issued directly with inline assembly, confined
//!   to the [`sys`] module. Registration is level-triggered: an event
//!   repeats every wait until the condition is consumed.
//! - **tick fallback** (everywhere else, or forced with
//!   `LOTUS_NET_BACKEND=fallback`): a portable emulation that reports
//!   every registered descriptor as ready on a short tick. It
//!   over-reports readiness by design — correct against state machines
//!   that treat `WouldBlock` as a no-op (which level-triggered
//!   consumers must already do), at the cost of one wakeup per tick.
//!
//! The shim is deliberately thin: it owns no sockets (callers keep
//! their `TcpListener`/`TcpStream` values and hand in raw descriptors),
//! imposes no buffer discipline, and never allocates per event beyond
//! the caller's reusable [`Events`] buffer.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Caller-chosen identifier attached to a registration; every event
/// carries the token of the descriptor that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Which readiness directions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or closed by the peer).
    pub readable: bool,
    /// Wake when the descriptor accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Token of the registration that became ready.
    pub token: Token,
    /// The descriptor is readable (includes EOF/peer-close: a read
    /// will not block, it will return 0 or an error).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The kernel flagged an error or hangup; the connection should be
    /// read to completion and closed.
    pub closed: bool,
}

/// Reusable buffer of [`Event`]s filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    items: Vec<Event>,
}

impl Events {
    /// An empty buffer sized for `capacity` events per wait.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            items: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// The events delivered by the last wait.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.items.iter()
    }

    /// Number of delivered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the last wait delivered nothing (pure timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// How long the fallback backend sleeps per tick while descriptors are
/// registered. Short enough that emulated readiness stays responsive,
/// long enough that the loop does not spin a core.
const FALLBACK_TICK: Duration = Duration::from_millis(1);

/// The readiness multiplexer. See the crate docs for backend selection.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

#[derive(Debug)]
enum Backend {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Epoll(sys::Epoll),
    Fallback(Arc<FallbackState>),
}

impl Poller {
    /// Opens a poller on the best backend for this platform; set
    /// `LOTUS_NET_BACKEND=fallback` to force the portable emulation.
    ///
    /// # Errors
    /// Returns the OS error when the epoll descriptor cannot be
    /// created. The fallback never fails.
    pub fn new() -> io::Result<Poller> {
        if std::env::var_os("LOTUS_NET_BACKEND").is_some_and(|v| v == "fallback") {
            return Ok(Poller::fallback());
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            return Ok(Poller {
                backend: Backend::Epoll(sys::Epoll::new()?),
            });
        }
        #[allow(unreachable_code)]
        Ok(Poller::fallback())
    }

    /// Opens a poller on the portable tick backend unconditionally.
    #[must_use]
    pub fn fallback() -> Poller {
        Poller {
            backend: Backend::Fallback(Arc::new(FallbackState::default())),
        }
    }

    /// Whether this poller runs on a real kernel readiness queue
    /// (`false` means the tick fallback is emulating readiness).
    #[must_use]
    pub fn is_kernel_backed(&self) -> bool {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(_) => true,
            Backend::Fallback(_) => false,
        }
    }

    /// Subscribes `fd` under `token`. One registration per descriptor;
    /// use [`Poller::reregister`] to change the interest set.
    ///
    /// # Errors
    /// Returns the OS error from `epoll_ctl` (e.g. an already
    /// registered or invalid descriptor).
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(sys::EPOLL_CTL_ADD, fd, Some((token, interest))),
            Backend::Fallback(state) => {
                state.lock().fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Replaces the interest set of an already registered descriptor.
    ///
    /// # Errors
    /// Returns the OS error from `epoll_ctl` (e.g. a descriptor that
    /// was never registered).
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(sys::EPOLL_CTL_MOD, fd, Some((token, interest))),
            Backend::Fallback(state) => {
                state.lock().fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Drops a registration. Safe to call for descriptors about to be
    /// closed (closing also deregisters on the epoll backend).
    ///
    /// # Errors
    /// Returns the OS error from `epoll_ctl`; an unknown descriptor on
    /// the fallback backend is silently ignored.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.ctl(sys::EPOLL_CTL_DEL, fd, None),
            Backend::Fallback(state) => {
                state.lock().fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Creates a [`Waker`] whose [`Waker::wake`] interrupts a blocked
    /// [`Poller::wait`] on this poller, delivering a readable [`Event`]
    /// carrying `token`. One waker per poller.
    ///
    /// # Errors
    /// Returns the OS error when the wake pipe cannot be created or
    /// registered (epoll backend only).
    pub fn waker(&self, token: Token) -> io::Result<Waker> {
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.waker(token),
            Backend::Fallback(state) => {
                state.lock().waker_token = Some(token);
                Ok(Waker {
                    inner: WakerInner::Flag(Arc::clone(state)),
                })
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// waker fires, or `timeout` elapses (`None` = wait indefinitely).
    /// Fills `events` (clearing previous contents) and returns the
    /// number of events delivered; `0` means the timeout elapsed.
    ///
    /// # Errors
    /// Returns the OS error from `epoll_pwait`; `EINTR` is retried
    /// internally and never surfaces.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.items.clear();
        match &self.backend {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            Backend::Fallback(state) => {
                state.wait(events, timeout);
                Ok(events.len())
            }
        }
    }
}

/// Accepts one pending connection from a nonblocking listener, returning
/// the stream already in nonblocking mode.
///
/// On Linux x86-64 this is a single `accept4(SOCK_NONBLOCK |
/// SOCK_CLOEXEC)` syscall — the socket is born nonblocking, with no
/// window where a separate `set_nonblocking` could fail or be skipped.
/// Everywhere else (or when `LOTUS_NET_BACKEND=fallback` forces the
/// portable backend) it degrades to `accept` followed by
/// `set_nonblocking(true)`. `EINTR` is retried internally.
///
/// Returns `Ok(None)` when no connection is pending (`WouldBlock`).
///
/// # Errors
/// Returns the OS error from `accept4`/`accept` (e.g. `ECONNABORTED`,
/// `EMFILE`), or from the fallback's `set_nonblocking`.
pub fn accept_nonblocking(listener: &std::net::TcpListener) -> io::Result<Option<std::net::TcpStream>> {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        if !std::env::var_os("LOTUS_NET_BACKEND").is_some_and(|v| v == "fallback") {
            return sys::accept_nonblocking(listener);
        }
    }
    accept_nonblocking_portable(listener)
}

/// The portable accept path: `accept` then `set_nonblocking(true)`.
/// [`accept_nonblocking`] uses it off Linux and under the forced
/// fallback backend; it is public so the contract test can exercise
/// both paths on any platform.
///
/// # Errors
/// Returns the OS error from `accept` or `set_nonblocking`.
pub fn accept_nonblocking_portable(
    listener: &std::net::TcpListener,
) -> io::Result<Option<std::net::TcpStream>> {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(true)?;
                return Ok(Some(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Cross-thread handle that interrupts a blocked [`Poller::wait`].
/// Cheap to clone-by-construction (create one, move it anywhere);
/// waking an idle poller is a no-op beyond one queued event.
#[derive(Debug)]
pub struct Waker {
    inner: WakerInner,
}

#[derive(Debug)]
enum WakerInner {
    /// Epoll backend: one byte down a nonblocking pipe the poller
    /// drains. A full pipe means a wake is already pending — dropped
    /// writes are correct, not lossy.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Pipe(std::os::unix::net::UnixStream),
    /// Fallback backend: flag + condvar.
    Flag(Arc<FallbackState>),
}

impl Waker {
    /// Interrupts the poller's current (or next) wait.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            WakerInner::Pipe(pipe) => {
                use std::io::Write;
                // WouldBlock (pipe full) and broken-pipe (poller gone)
                // both mean no further action is useful.
                let _ = (&mut &*pipe).write(&[1u8]);
            }
            WakerInner::Flag(state) => {
                state.lock().woken = true;
                state.cvar.notify_all();
            }
        }
    }
}

/// Shared state of the portable fallback backend.
#[derive(Debug, Default)]
struct FallbackState {
    inner: Mutex<FallbackInner>,
    cvar: Condvar,
}

#[derive(Debug, Default)]
struct FallbackInner {
    fds: HashMap<RawFd, (Token, Interest)>,
    woken: bool,
    waker_token: Option<Token>,
}

impl FallbackState {
    fn lock(&self) -> std::sync::MutexGuard<'_, FallbackInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) {
        let mut inner = self.lock();
        if !inner.woken {
            // With descriptors registered the tick bounds the emulation
            // latency; with none, sleep the caller's full timeout.
            let dur = if inner.fds.is_empty() {
                timeout.unwrap_or(Duration::from_secs(3600))
            } else {
                timeout.map_or(FALLBACK_TICK, |t| t.min(FALLBACK_TICK))
            };
            let (guard, _) = self
                .cvar
                .wait_timeout(inner, dur)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
        if inner.woken {
            inner.woken = false;
            if let Some(token) = inner.waker_token {
                events.items.push(Event {
                    token,
                    readable: true,
                    writable: false,
                    closed: false,
                });
            }
        }
        for (token, interest) in inner.fds.values() {
            // Emulated readiness: report what the caller subscribed to
            // and let its nonblocking I/O observe the truth.
            if interest.readable || interest.writable {
                events.items.push(Event {
                    token: *token,
                    readable: interest.readable,
                    writable: interest.writable,
                    closed: false,
                });
            }
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    //! Raw epoll syscalls for x86-64 Linux. No `libc` is available
    //! offline, so the three syscalls this backend needs are issued
    //! directly; everything unsafe lives behind the safe [`Epoll`] API.

    use super::{Event, Events, Interest, Token, Waker, WakerInner};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_PWAIT: usize = 281;
    const SYS_ACCEPT4: usize = 288;
    const SYS_EPOLL_CREATE1: usize = 291;

    /// `SOCK_NONBLOCK` / `SOCK_CLOEXEC` flag values for `accept4`.
    const SOCK_NONBLOCK: usize = 0o4000;
    const SOCK_CLOEXEC: usize = 0o2000000;

    const EAGAIN: i32 = 11;

    pub(crate) const EPOLL_CTL_ADD: i32 = 1;
    pub(crate) const EPOLL_CTL_DEL: i32 = 2;
    pub(crate) const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: usize = 0x80000;

    const EINTR: i32 = 4;

    /// The kernel's event record. x86-64 packs it to 12 bytes.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Issues a 6-argument Linux syscall and returns the raw result
    /// (negative values are `-errno`).
    ///
    /// # Safety
    /// The caller must uphold the specific syscall's contract: every
    /// pointer argument must be valid for the kernel's documented
    /// access pattern for the duration of the call.
    unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: the x86-64 Linux syscall ABI — number in rax,
        // arguments in rdi/rsi/rdx/r10/r8/r9, result in rax, rcx and
        // r11 clobbered by the `syscall` instruction. The caller
        // guarantees pointer validity per this function's contract.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// An epoll instance plus the drain side of its wake pipe.
    #[derive(Debug)]
    pub(crate) struct Epoll {
        epfd: RawFd,
        /// `(read half, token)` of the wake pipe, installed by
        /// [`Epoll::waker`]; the read half must outlive the instance.
        wake_rx: Mutex<Option<(UnixStream, u64)>>,
    }

    impl Epoll {
        pub(crate) fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers.
            let epfd = check(unsafe { syscall6(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?
                as RawFd;
            Ok(Epoll {
                epfd,
                wake_rx: Mutex::new(None),
            })
        }

        pub(crate) fn ctl(
            &self,
            op: i32,
            fd: RawFd,
            sub: Option<(Token, Interest)>,
        ) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            if let Some((token, interest)) = sub {
                let mut bits = EPOLLRDHUP;
                if interest.readable {
                    bits |= EPOLLIN;
                }
                if interest.writable {
                    bits |= EPOLLOUT;
                }
                ev = EpollEvent {
                    events: bits,
                    data: token.0,
                };
            }
            // SAFETY: `ev` is a valid, initialized EpollEvent that
            // lives across the call; the kernel only reads it. DEL
            // ignores the pointer on every kernel this crate targets
            // but a valid one is passed anyway.
            check(unsafe {
                syscall6(
                    SYS_EPOLL_CTL,
                    self.epfd as usize,
                    op as usize,
                    fd as usize,
                    std::ptr::addr_of!(ev) as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        pub(crate) fn waker(&self, token: Token) -> io::Result<Waker> {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            self.ctl(EPOLL_CTL_ADD, rx.as_raw_fd(), Some((token, Interest::READ)))?;
            *self.wake_rx.lock().unwrap_or_else(PoisonError::into_inner) = Some((rx, token.0));
            Ok(Waker {
                inner: WakerInner::Pipe(tx),
            })
        }

        pub(crate) fn wait(
            &self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: isize = match timeout {
                // Saturate instead of overflowing i32; ~24 days is
                // indistinguishable from forever for a readiness loop.
                Some(t) => t.as_millis().min(i32::MAX as u128) as isize,
                None => -1,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
            let n = loop {
                // SAFETY: `buf` is a valid writable array of 128
                // EpollEvent records living across the call; maxevents
                // matches its length; the sigmask pointer is null
                // (no mask) with the mandatory sigsetsize of 8.
                let ret = unsafe {
                    syscall6(
                        SYS_EPOLL_PWAIT,
                        self.epfd as usize,
                        buf.as_mut_ptr() as usize,
                        buf.len(),
                        timeout_ms as usize,
                        0,
                        8,
                    )
                };
                if ret == -(EINTR as isize) {
                    continue;
                }
                break check(ret)?;
            };
            let wake_rx = self.wake_rx.lock().unwrap_or_else(PoisonError::into_inner);
            for raw in &buf[..n] {
                let bits = raw.events;
                let data = raw.data;
                if let Some((pipe, wake_token)) = wake_rx.as_ref() {
                    if data == *wake_token {
                        drain_pipe(pipe);
                    }
                }
                events_push(events, bits, data);
            }
            Ok(n)
        }
    }

    fn events_push(events: &mut Events, bits: u32, data: u64) {
        let closed = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
        events.items.push(Event {
            token: Token(data),
            // Error/hangup conditions surface as readable so the
            // consumer's next read observes EOF or the real error.
            readable: bits & EPOLLIN != 0 || closed,
            writable: bits & EPOLLOUT != 0,
            closed,
        });
    }

    /// `accept4` with `SOCK_NONBLOCK | SOCK_CLOEXEC`: the accepted
    /// socket arrives already nonblocking and close-on-exec, removing
    /// the accept-then-`set_nonblocking` window. `Ok(None)` means no
    /// connection is pending; `EINTR` is retried.
    pub(crate) fn accept_nonblocking(
        listener: &std::net::TcpListener,
    ) -> io::Result<Option<std::net::TcpStream>> {
        use std::os::fd::FromRawFd;
        loop {
            // SAFETY: accept4's sockaddr/addrlen pointers may both be
            // null when the caller does not want the peer address; the
            // listener fd is valid for the duration of the call.
            let ret = unsafe {
                syscall6(
                    SYS_ACCEPT4,
                    listener.as_raw_fd() as usize,
                    0,
                    0,
                    SOCK_NONBLOCK | SOCK_CLOEXEC,
                    0,
                    0,
                )
            };
            if ret == -(EINTR as isize) {
                continue;
            }
            if ret == -(EAGAIN as isize) {
                return Ok(None);
            }
            let fd = check(ret)? as RawFd;
            // SAFETY: `fd` is a fresh socket descriptor returned by
            // accept4 and owned by nobody else; FromRawFd transfers
            // that ownership exactly once.
            return Ok(Some(unsafe { std::net::TcpStream::from_raw_fd(fd) }));
        }
    }

    fn drain_pipe(pipe: &UnixStream) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&mut &*pipe).read(&mut sink), Ok(n) if n > 0) {}
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: close takes no pointers; the fd is owned by this
            // instance and closed exactly once.
            let _ = unsafe { syscall6(SYS_CLOSE, self.epfd as usize, 0, 0, 0, 0, 0) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    fn pollers() -> Vec<Poller> {
        let mut all = vec![Poller::fallback()];
        if let Ok(p) = Poller::new() {
            all.push(p);
        }
        all
    }

    #[test]
    fn readable_event_arrives_for_buffered_data() {
        for poller in pollers() {
            let (mut a, b) = UnixStream::pair().expect("pair");
            b.set_nonblocking(true).expect("nonblocking");
            poller
                .register(b.as_raw_fd(), Token(7), Interest::READ)
                .expect("register");
            a.write_all(b"x").expect("write");
            let mut events = Events::with_capacity(8);
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut seen = false;
            while Instant::now() < deadline && !seen {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .expect("wait");
                seen = events.iter().any(|e| e.token == Token(7) && e.readable);
            }
            assert!(seen, "readable event never arrived");
            let mut buf = [0u8; 1];
            assert_eq!((&mut &b).read(&mut buf).expect("read"), 1);
            poller.deregister(b.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn writable_interest_fires_on_an_open_socket() {
        for poller in pollers() {
            let (_a, b) = UnixStream::pair().expect("pair");
            poller
                .register(b.as_raw_fd(), Token(3), Interest::BOTH)
                .expect("register");
            let mut events = Events::with_capacity(8);
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut seen = false;
            while Instant::now() < deadline && !seen {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .expect("wait");
                seen = events.iter().any(|e| e.token == Token(3) && e.writable);
            }
            assert!(seen, "writable event never arrived");
        }
    }

    #[test]
    fn waker_interrupts_a_long_wait() {
        for poller in pollers() {
            let waker = poller.waker(Token(99)).expect("waker");
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let mut events = Events::with_capacity(8);
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .expect("wait");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "waker failed to interrupt the wait"
            );
            assert!(events.iter().any(|e| e.token == Token(99)));
            handle.join().expect("waker thread");
        }
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        for poller in pollers() {
            let (a, b) = UnixStream::pair().expect("pair");
            b.set_nonblocking(true).expect("nonblocking");
            poller
                .register(b.as_raw_fd(), Token(1), Interest::READ)
                .expect("register");
            drop(a);
            let mut events = Events::with_capacity(8);
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut seen = false;
            while Instant::now() < deadline && !seen {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .expect("wait");
                seen = events.iter().any(|e| e.token == Token(1) && e.readable);
            }
            assert!(seen, "peer close never produced a readable event");
            let mut buf = [0u8; 8];
            assert_eq!((&mut &b).read(&mut buf).expect("read eof"), 0);
        }
    }

    #[test]
    fn timeout_returns_zero_events() {
        let poller = Poller::fallback();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn accept_nonblocking_contract_holds_on_both_paths() {
        use std::net::{TcpListener, TcpStream};
        // Both the accept4 fast path (where available) and the portable
        // accept-then-set-nonblocking path must satisfy one contract:
        // None when nothing is pending, Some(nonblocking stream) when a
        // connection is queued.
        type AcceptFn = fn(&TcpListener) -> std::io::Result<Option<TcpStream>>;
        let paths: [(&str, AcceptFn); 2] = [
            ("best", accept_nonblocking as AcceptFn),
            ("portable", accept_nonblocking_portable as AcceptFn),
        ];
        for (label, accept) in paths {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).expect("nonblocking listener");
            let addr = listener.local_addr().expect("addr");

            // Empty queue: must report None, not block or error.
            assert!(
                accept(&listener).expect("accept on empty queue").is_none(),
                "{label}: expected None with no pending connection"
            );

            let mut client = TcpStream::connect(addr).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(5);
            let accepted = loop {
                if let Some(stream) = accept(&listener).expect("accept") {
                    break stream;
                }
                assert!(
                    Instant::now() < deadline,
                    "{label}: pending connection never surfaced"
                );
                std::thread::sleep(Duration::from_millis(1));
            };

            // The accepted stream must already be nonblocking: a read
            // with no data is WouldBlock, never a hang.
            let mut buf = [0u8; 1];
            let err = (&mut &accepted)
                .read(&mut buf)
                .expect_err("read on idle accepted socket");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::WouldBlock,
                "{label}: accepted stream is not nonblocking"
            );

            // And usable: bytes flow both ways.
            client.write_all(b"hi").expect("client write");
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match (&mut &accepted).read(&mut buf) {
                    Ok(n) => {
                        assert!(n > 0, "{label}: unexpected EOF");
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        assert!(Instant::now() < deadline, "{label}: data never arrived");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => panic!("{label}: read failed: {e}"),
                }
            }
        }
    }

    #[test]
    fn kernel_backend_reports_itself() {
        let poller = Poller::new().expect("poller");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(poller.is_kernel_backed());
        assert!(!Poller::fallback().is_kernel_backed());
    }
}
