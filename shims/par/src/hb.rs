//! FastTrack-style happens-before race detection over the scheduler's
//! event log (DESIGN.md §12).
//!
//! The deterministic replay mode ([`crate::sched::with_schedule`])
//! serializes one parallel execution into a single ordered stream of
//! [`Event`]s: fork/begin/end/join edges from the region lifecycle,
//! combine edges from reduction terminals, release/acquire edges from
//! explicitly logged atomic publication, and the shadow byte-range
//! access log. This module replays that stream against a clock model
//! and reports every pair of overlapping, conflicting accesses that the
//! synchronization events fail to order.
//!
//! # Clock model
//!
//! Every execution context — the serial mainline plus one context per
//! logical task — carries a scalar event counter (its *epoch*). Full
//! per-task vector clocks are never materialized: because the replayed
//! execution is a series-parallel fork/join tree, the ordering question
//! "does task A's epoch 3 happen before task B's epoch 5?" reduces to
//! projecting both epochs onto the closest common ancestor context and
//! comparing there — A's side projects through its region's *join*
//! point (unjoined tasks project to infinity), B's side through its
//! region's *fork* point. This is the epoch compression of FastTrack:
//! an access is stamped with `(context, epoch)` instead of a clock
//! vector, and vector comparisons happen structurally on the region
//! tree. Acquire events additionally graft the release point (and the
//! releaser's own acquired knowledge) into the acquiring context, which
//! orders cross-task publication that the tree alone cannot see.
//!
//! # Join classification
//!
//! A region that emitted any [`Event::Combine`] is a *reduction*
//! region: its tasks join the continuation only through their combine
//! edge (a task whose result was never combined stays unordered — the
//! "dropped combine" bug class). A region with no combine events is a
//! *barrier* region (`for_each`-style): every task that ended joins at
//! the region's join event. A region with no join event at all leaves
//! every task unordered against the continuation — the "missing join"
//! bug class.

use std::collections::HashMap;

use crate::sched::{Access, ClockInfo, Race, RaceReport, MAX_RACES_RECORDED, SERIAL_TASK};

/// One entry of the replayed execution's event stream.
///
/// Synchronization events carry their originating context explicitly
/// (`region == u32::MAX` marks the serial mainline), so a stream can be
/// built by hand for detector fixtures as well as recorded live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A parallel region of `tasks` logical tasks was forked from the
    /// context active at this point in the stream.
    Fork {
        /// The new region's id.
        region: u32,
        /// Number of logical tasks the region was forked with.
        tasks: u32,
    },
    /// Logical task `task` of `region` started executing.
    Begin {
        /// Region the task belongs to.
        region: u32,
        /// Original (pre-permutation) task index.
        task: u32,
    },
    /// Logical task `task` of `region` finished its body.
    End {
        /// Region the task belongs to.
        region: u32,
        /// Original task index.
        task: u32,
    },
    /// Task `task`'s value was folded into `region`'s reduction.
    Combine {
        /// Region being reduced.
        region: u32,
        /// Task whose result was combined.
        task: u32,
    },
    /// `region` joined back into the context it was forked from.
    Join {
        /// The joining region.
        region: u32,
    },
    /// The given context published `addr` with Release ordering.
    Release {
        /// Releasing region (`u32::MAX` = serial).
        region: u32,
        /// Releasing task.
        task: u32,
        /// Address of the atomic being published.
        addr: usize,
    },
    /// The given context observed `addr` with Acquire ordering.
    Acquire {
        /// Acquiring region (`u32::MAX` = serial).
        region: u32,
        /// Acquiring task.
        task: u32,
        /// Address of the atomic being observed.
        addr: usize,
    },
    /// A logged byte-range access (see [`crate::sched::log_write`]).
    Access(Access),
}

/// Index of the serial mainline in the context table.
const SERIAL_CTX: usize = 0;

/// One execution context: the serial mainline or a logical task.
struct Ctx {
    /// Region this context belongs to (`u32::MAX` for serial).
    region: u32,
    /// Event counter — the context's scalar clock.
    counter: u32,
    /// Acquired knowledge: `(context, epoch)` pairs this context is
    /// ordered after via release/acquire chains.
    acq: Vec<(usize, u32)>,
    ended: bool,
    combined: bool,
}

/// Per-region fork/join bookkeeping.
struct RegionMeta {
    /// Context the region was forked from.
    parent: usize,
    /// Fork point on the parent's clock.
    fork: u32,
    /// Join point on the parent's clock (`None`: never joined).
    join: Option<u32>,
    /// Whether any task combined — selects the join classification.
    combining: bool,
}

/// One stamped access record.
struct Rec {
    access: Access,
    ctx: usize,
    epoch: u32,
    /// Length of the context's acquire set when the access happened.
    acq_len: usize,
    /// Position in the event stream (replay order).
    seq: usize,
}

/// Last release on one address: `(ctx, epoch, inherited knowledge)`.
type ReleasePoint = (usize, u32, Vec<(usize, u32)>);

struct Detector {
    ctxs: Vec<Ctx>,
    ctx_of: HashMap<(u32, u32), usize>,
    regions: HashMap<u32, RegionMeta>,
    /// Context active at the current stream position.
    cur: usize,
    releases: HashMap<usize, ReleasePoint>,
    recs: Vec<Rec>,
}

impl Detector {
    fn new() -> Self {
        Detector {
            ctxs: vec![Ctx {
                region: u32::MAX,
                counter: 0,
                acq: Vec::new(),
                ended: false,
                combined: false,
            }],
            ctx_of: HashMap::new(),
            regions: HashMap::new(),
            cur: SERIAL_CTX,
            releases: HashMap::new(),
            recs: Vec::new(),
        }
    }

    fn bump(&mut self, ctx: usize) -> u32 {
        let c = &mut self.ctxs[ctx];
        c.counter += 1;
        c.counter
    }

    /// Region lookup, creating an implicit region (forked from the
    /// current context at its present epoch) for hand-built streams
    /// that skip the explicit fork.
    fn ensure_region(&mut self, region: u32) {
        if self.regions.contains_key(&region) {
            return;
        }
        let parent = self.cur;
        let fork = self.ctxs[parent].counter;
        self.regions.insert(
            region,
            RegionMeta {
                parent,
                fork,
                join: None,
                combining: false,
            },
        );
    }

    /// Context lookup/creation for an event's `(region, task)` stamp.
    fn ctx_for(&mut self, region: u32, task: u32) -> usize {
        if region == u32::MAX || task == SERIAL_TASK {
            return SERIAL_CTX;
        }
        if let Some(&c) = self.ctx_of.get(&(region, task)) {
            return c;
        }
        self.ensure_region(region);
        let c = self.ctxs.len();
        self.ctxs.push(Ctx {
            region,
            counter: 0,
            acq: Vec::new(),
            ended: false,
            combined: false,
        });
        self.ctx_of.insert((region, task), c);
        c
    }

    fn feed(&mut self, seq: usize, ev: &Event) {
        match *ev {
            Event::Fork { region, tasks: _ } => {
                let parent = self.cur;
                let fork = self.bump(parent);
                self.regions.entry(region).or_insert(RegionMeta {
                    parent,
                    fork,
                    join: None,
                    combining: false,
                });
            }
            Event::Begin { region, task } => {
                self.cur = self.ctx_for(region, task);
            }
            Event::End { region, task } => {
                let c = self.ctx_for(region, task);
                self.ctxs[c].ended = true;
                self.cur = self.regions[&region].parent;
            }
            Event::Combine { region, task } => {
                let c = self.ctx_for(region, task);
                self.ctxs[c].combined = true;
                if let Some(meta) = self.regions.get_mut(&region) {
                    meta.combining = true;
                }
            }
            Event::Join { region } => {
                self.ensure_region(region);
                let parent = self.regions[&region].parent;
                let at = self.bump(parent);
                if let Some(meta) = self.regions.get_mut(&region) {
                    if meta.join.is_none() {
                        meta.join = Some(at);
                    }
                }
                self.cur = parent;
            }
            Event::Release { region, task, addr } => {
                let c = self.ctx_for(region, task);
                let epoch = self.bump(c);
                let inherited = self.ctxs[c].acq.clone();
                self.releases.insert(addr, (c, epoch, inherited));
            }
            Event::Acquire { region, task, addr } => {
                let c = self.ctx_for(region, task);
                self.bump(c);
                if let Some((rc, re, inherited)) = self.releases.get(&addr).cloned() {
                    self.ctxs[c].acq.push((rc, re));
                    self.ctxs[c].acq.extend(inherited);
                }
            }
            Event::Access(access) => {
                let c = self.ctx_for(access.region, access.task);
                let epoch = self.bump(c);
                self.recs.push(Rec {
                    access,
                    ctx: c,
                    epoch,
                    acq_len: self.ctxs[c].acq.len(),
                    seq,
                });
            }
        }
    }

    /// Whether task context `c` joins its region's continuation: via
    /// its combine edge in a reduction region, via its end in a barrier
    /// region.
    fn task_joins(&self, c: usize) -> bool {
        let ctx = &self.ctxs[c];
        match self.regions.get(&ctx.region) {
            Some(meta) if meta.combining => ctx.combined,
            Some(_) => ctx.ended,
            None => false,
        }
    }

    /// Projects an epoch up the region tree: `(context, epoch)` pairs
    /// at every ancestor the event's ordering escapes to. `exit` mode
    /// projects through join points (stopping at an unjoined level);
    /// entry mode projects through fork points.
    fn chain(&self, ctx: usize, epoch: u32, exit: bool) -> Vec<(usize, u32)> {
        let mut out = vec![(ctx, epoch)];
        let mut c = ctx;
        while c != SERIAL_CTX {
            let Some(meta) = self.regions.get(&self.ctxs[c].region) else {
                break;
            };
            if exit {
                let Some(at) = meta.join.filter(|_| self.task_joins(c)) else {
                    break;
                };
                out.push((meta.parent, at));
            } else {
                out.push((meta.parent, meta.fork));
            }
            c = meta.parent;
        }
        out
    }

    /// Happens-before: does `a` (earlier in the stream) order before
    /// `b` under the recorded synchronization?
    fn hb(&self, a: &Rec, b: &Rec) -> bool {
        if a.ctx == b.ctx {
            return true;
        }
        // Release/acquire edge into b's context.
        if self.ctxs[b.ctx].acq[..b.acq_len]
            .iter()
            .any(|&(c, e)| c == a.ctx && e >= a.epoch)
        {
            return true;
        }
        // Series-parallel tree: a's exit projection meets b's entry
        // projection at a common ancestor.
        let exits = self.chain(a.ctx, a.epoch, true);
        let entries = self.chain(b.ctx, b.epoch, false);
        exits
            .iter()
            .any(|&(c, ea)| entries.iter().any(|&(c2, eb)| c == c2 && ea <= eb))
    }

    /// Clock evidence for one side of a race report.
    fn clock_info(&self, rec: &Rec) -> ClockInfo {
        let ctx = &self.ctxs[rec.ctx];
        if rec.ctx == SERIAL_CTX {
            return ClockInfo {
                region: u32::MAX,
                task: SERIAL_TASK,
                epoch: rec.epoch,
                fork: 0,
                join: None,
            };
        }
        let meta = self.regions.get(&ctx.region);
        ClockInfo {
            region: ctx.region,
            task: rec.access.task,
            epoch: rec.epoch,
            fork: meta.map_or(0, |m| m.fork),
            join: meta
                .and_then(|m| m.join)
                .filter(|_| self.task_joins(rec.ctx)),
        }
    }
}

/// Replays `events` against the clock model and reports every pair of
/// overlapping conflicting accesses not ordered by happens-before.
#[must_use]
pub fn detect(events: &[Event]) -> RaceReport {
    let mut det = Detector::new();
    for (seq, ev) in events.iter().enumerate() {
        det.feed(seq, ev);
    }

    let mut report = RaceReport::default();
    let mut writes: Vec<&Rec> = det.recs.iter().filter(|r| r.access.write).collect();
    writes.sort_by_key(|r| (r.access.base, r.access.task, r.seq));

    // Running prefix max of write ends, for backward overlap scans.
    let mut prefix_max_end = Vec::with_capacity(writes.len());
    let mut max_end = 0usize;
    for w in &writes {
        max_end = max_end.max(w.access.end());
        prefix_max_end.push(max_end);
    }

    let mut record = |det: &Detector, x: &Rec, y: &Rec, write_write: bool| {
        // Report in replay order: `a` is the earlier access.
        let (a, b) = if x.seq <= y.seq { (x, y) } else { (y, x) };
        if det.hb(a, b) {
            return;
        }
        let overlap = a.access.end().min(b.access.end()) - a.access.base.max(b.access.base);
        report.total_races += 1;
        if report.races.len() < MAX_RACES_RECORDED {
            report.races.push(Race {
                region: a.access.region,
                label_a: a.access.label,
                task_a: a.access.task,
                label_b: b.access.label,
                task_b: b.access.task,
                write_write,
                overlap_len: overlap,
                clock_a: det.clock_info(a),
                clock_b: det.clock_info(b),
            });
        }
    };

    // Write-write: scan each write backward while an earlier (by base)
    // write can still reach it.
    for (i, w) in writes.iter().enumerate() {
        for j in (0..i).rev() {
            if prefix_max_end[j] <= w.access.base {
                break;
            }
            let prev = writes[j];
            if prev.ctx != w.ctx && prev.access.overlaps(&w.access) {
                record(&det, prev, w, true);
            }
        }
    }

    // Read-write: probe each read against the writes overlapping it.
    for r in det.recs.iter().filter(|r| !r.access.write) {
        let start = writes.partition_point(|w| w.access.base < r.access.end());
        for j in (0..start).rev() {
            if prefix_max_end[j] <= r.access.base {
                break;
            }
            let w = writes[j];
            if w.ctx != r.ctx && w.access.overlaps(&r.access) {
                record(&det, w, r, false);
            }
        }
    }

    report.races.sort_by(|a, b| {
        (a.region, a.label_a, a.task_a, a.label_b, a.task_b)
            .cmp(&(b.region, b.label_a, b.task_a, b.label_b, b.task_b))
    });
    report.accesses = det.recs.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(region: u32, task: u32, write: bool, base: usize, len: usize) -> Event {
        Event::Access(Access {
            region,
            task,
            write,
            base,
            len,
            label: "fixture",
        })
    }

    #[test]
    fn joined_tasks_order_before_continuation() {
        // Task writes, region joins, serial reads: ordered.
        let events = [
            Event::Fork {
                region: 0,
                tasks: 1,
            },
            Event::Begin { region: 0, task: 0 },
            access(0, 0, true, 100, 8),
            Event::End { region: 0, task: 0 },
            Event::Join { region: 0 },
            access(u32::MAX, SERIAL_TASK, false, 100, 8),
        ];
        assert!(detect(&events).is_clean());
    }

    #[test]
    fn missing_join_leaves_task_unordered() {
        let events = [
            Event::Fork {
                region: 0,
                tasks: 1,
            },
            Event::Begin { region: 0, task: 0 },
            access(0, 0, true, 100, 8),
            Event::End { region: 0, task: 0 },
            // No Join: the continuation read races.
            access(u32::MAX, SERIAL_TASK, false, 100, 8),
        ];
        let report = detect(&events);
        assert_eq!(report.total_races, 1);
        assert!(report.races[0].clock_a.join.is_none());
    }

    #[test]
    fn dropped_combine_in_reduction_region_races() {
        // Task 1 combined; task 0's combine edge was dropped, so its
        // write stays unordered against the continuation.
        let events = [
            Event::Fork {
                region: 0,
                tasks: 2,
            },
            Event::Begin { region: 0, task: 0 },
            access(0, 0, true, 100, 8),
            Event::End { region: 0, task: 0 },
            Event::Begin { region: 0, task: 1 },
            access(0, 1, true, 200, 8),
            Event::Combine { region: 0, task: 1 },
            Event::End { region: 0, task: 1 },
            Event::Join { region: 0 },
            access(u32::MAX, SERIAL_TASK, false, 100, 8),
            access(u32::MAX, SERIAL_TASK, false, 200, 8),
        ];
        let report = detect(&events);
        assert_eq!(report.total_races, 1, "{report}");
        assert_eq!(report.races[0].task_a, 0);
        assert!(report.races[0].clock_a.join.is_none());
    }

    #[test]
    fn release_acquire_orders_cross_task_publication() {
        let published = [
            Event::Fork {
                region: 0,
                tasks: 2,
            },
            Event::Begin { region: 0, task: 0 },
            access(0, 0, true, 100, 8),
            Event::Release {
                region: 0,
                task: 0,
                addr: 0xF1A6,
            },
            Event::End { region: 0, task: 0 },
            Event::Begin { region: 0, task: 1 },
            Event::Acquire {
                region: 0,
                task: 1,
                addr: 0xF1A6,
            },
            access(0, 1, false, 100, 8),
            Event::End { region: 0, task: 1 },
            Event::Join { region: 0 },
        ];
        assert!(detect(&published).is_clean());
        // Same accesses without the release/acquire pair (e.g. the flag
        // was Relaxed): the sibling tasks race.
        let relaxed: Vec<Event> = published
            .iter()
            .copied()
            .filter(|e| !matches!(e, Event::Release { .. } | Event::Acquire { .. }))
            .collect();
        let report = detect(&relaxed);
        assert_eq!(report.total_races, 1);
        assert!(!report.races[0].write_write);
    }

    #[test]
    fn sibling_overlap_still_races_with_clock_evidence() {
        let events = [
            Event::Fork {
                region: 0,
                tasks: 2,
            },
            Event::Begin { region: 0, task: 0 },
            access(0, 0, true, 100, 8),
            Event::End { region: 0, task: 0 },
            Event::Begin { region: 0, task: 1 },
            access(0, 1, true, 104, 8),
            Event::End { region: 0, task: 1 },
            Event::Join { region: 0 },
        ];
        let report = detect(&events);
        assert_eq!(report.total_races, 1);
        let race = &report.races[0];
        assert!(race.write_write);
        assert_eq!(race.overlap_len, 4);
        // Both sides carry clock evidence: same fork point, both joined.
        assert_eq!(race.clock_a.fork, race.clock_b.fork);
        assert!(race.clock_a.join.is_some());
    }

    #[test]
    fn nested_region_joins_into_parent_task() {
        // Inner region forked from task 0; after the inner join, a
        // sibling-of-inner serial-side read is ordered, while task 1 of
        // the outer region stays concurrent with the inner task.
        let events = [
            Event::Fork {
                region: 0,
                tasks: 2,
            },
            Event::Begin { region: 0, task: 0 },
            Event::Fork {
                region: 1,
                tasks: 1,
            },
            Event::Begin { region: 1, task: 0 },
            access(1, 0, true, 100, 8),
            Event::End { region: 1, task: 0 },
            Event::Join { region: 1 },
            access(0, 0, false, 100, 8), // parent task after inner join: ordered
            Event::End { region: 0, task: 0 },
            Event::Begin { region: 0, task: 1 },
            access(0, 1, false, 100, 8), // sibling of parent: races with inner write
            Event::End { region: 0, task: 1 },
            Event::Join { region: 0 },
        ];
        let report = detect(&events);
        assert_eq!(report.total_races, 1, "{report}");
        assert_eq!(report.races[0].task_b, 1);
    }
}
