//! Sequential stand-in for the subset of the `rayon` API this workspace
//! uses, so the workspace builds in offline environments where the real
//! crate cannot be fetched.
//!
//! The root manifest renames this package to the `rayon` dependency key
//! (`rayon = { path = "shims/par", package = "lotus-par" }`), so every
//! `use rayon::prelude::*` in the workspace resolves here unchanged.
//! Execution is sequential: a "parallel iterator" is a thin [`Par`]
//! wrapper over a standard iterator, and the adapter methods reproduce
//! rayon's *signatures* (notably `fold(|| init, f)` and
//! `reduce(|| identity, op)`, which differ from [`Iterator`]'s) while
//! running on the calling thread. Swapping the real rayon back in is a
//! one-line manifest change; no call sites need to move.

use std::cmp::Ordering;

pub mod sched;

/// A "parallel" iterator: a newtype over a sequential iterator.
///
/// Does **not** implement [`Iterator`]; all adapters come from
/// [`ParallelIterator`], so rayon-style and std-style method resolution
/// never collide.
#[derive(Debug, Clone)]
pub struct Par<I>(I);

/// Source iterator honoring the deterministic scheduler
/// ([`sched::with_schedule`]).
///
/// Outside a schedule it passes items straight through. Inside one, the
/// first `next()` materializes the source, permutes it with the seeded
/// `(seed, len)` permutation, and then yields items in schedule order
/// while publishing each item's *original* index as the current logical
/// task (consumed by [`ParEnumerate`] and the shadow access log).
pub struct Sched<I: Iterator> {
    state: SchedState<I>,
}

impl<I: Iterator + Clone> Clone for Sched<I>
where
    I::Item: Clone,
{
    fn clone(&self) -> Self {
        Sched {
            state: self.state.clone(),
        }
    }
}

impl<I: Iterator> std::fmt::Debug for Sched<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            SchedState::Unpolled(_) => "unpolled",
            SchedState::Pass(_) => "pass",
            SchedState::Perm { .. } => "perm",
        };
        f.debug_struct("Sched").field("state", &state).finish()
    }
}

enum SchedState<I: Iterator> {
    /// Mode not yet sampled; holds the untouched source.
    Unpolled(Option<I>),
    /// Pass-through (no schedule active at first pull).
    Pass(I),
    /// Permuted items tagged with their original indices.
    Perm {
        items: std::vec::IntoIter<(u32, I::Item)>,
        region: u32,
    },
}

impl<I: Iterator + Clone> Clone for SchedState<I>
where
    I::Item: Clone,
{
    fn clone(&self) -> Self {
        match self {
            SchedState::Unpolled(slot) => SchedState::Unpolled(slot.clone()),
            SchedState::Pass(it) => SchedState::Pass(it.clone()),
            SchedState::Perm { items, region } => SchedState::Perm {
                items: items.clone(),
                region: *region,
            },
        }
    }
}

impl<I: Iterator> Sched<I> {
    fn new(inner: I) -> Self {
        Sched {
            state: SchedState::Unpolled(Some(inner)),
        }
    }
}

impl<I: Iterator> Iterator for Sched<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        loop {
            match &mut self.state {
                SchedState::Unpolled(slot) => {
                    let it = slot.take()?;
                    self.state = match sched::active_seed() {
                        None => SchedState::Pass(it),
                        Some(seed) => {
                            let items: Vec<I::Item> = it.collect();
                            let perm = sched::permutation(seed, items.len());
                            let mut slots: Vec<Option<I::Item>> =
                                items.into_iter().map(Some).collect();
                            let ordered: Vec<(u32, I::Item)> = perm
                                .into_iter()
                                .filter_map(|orig| {
                                    slots[orig as usize].take().map(|item| (orig, item))
                                })
                                .collect();
                            SchedState::Perm {
                                items: ordered.into_iter(),
                                region: sched::next_region(),
                            }
                        }
                    };
                }
                SchedState::Pass(it) => return it.next(),
                SchedState::Perm { items, region } => {
                    return match items.next() {
                        Some((task, item)) => {
                            sched::set_current(*region, task);
                            Some(item)
                        }
                        None => {
                            sched::clear_current();
                            None
                        }
                    }
                }
            }
        }
    }
}

/// Index-accurate `enumerate`: under an active schedule each item is
/// paired with its *original* index (rayon semantics — `enumerate` on an
/// indexed parallel iterator is execution-order independent); otherwise
/// with the sequential position.
#[derive(Debug, Clone)]
pub struct ParEnumerate<I> {
    inner: I,
    pos: usize,
}

impl<I: Iterator> Iterator for ParEnumerate<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = sched::current_task_index().unwrap_or(self.pos);
        self.pos += 1;
        Some((idx, item))
    }
}

impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.0
    }
}

/// The rayon `ParallelIterator` adapter surface, executed sequentially.
pub trait ParallelIterator: Sized {
    /// Item type, mirroring `rayon::iter::ParallelIterator::Item`.
    type Item;
    /// The underlying sequential iterator.
    type Inner: Iterator<Item = Self::Item>;

    /// Unwraps into the underlying sequential iterator.
    fn seq(self) -> Self::Inner;

    /// Maps each item (rayon: `map`).
    fn map<R, F>(self, f: F) -> Par<std::iter::Map<Self::Inner, F>>
    where
        F: FnMut(Self::Item) -> R,
    {
        Par(self.seq().map(f))
    }

    /// Runs `f` on every item (rayon: `for_each`).
    fn for_each<F>(self, f: F)
    where
        F: FnMut(Self::Item),
    {
        self.seq().for_each(f);
    }

    /// Keeps items matching the predicate (rayon: `filter`).
    fn filter<F>(self, f: F) -> Par<std::iter::Filter<Self::Inner, F>>
    where
        F: FnMut(&Self::Item) -> bool,
    {
        Par(self.seq().filter(f))
    }

    /// Maps each item to a *sequential* iterator and flattens (rayon:
    /// `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> Par<std::iter::FlatMap<Self::Inner, U, F>>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        Par(self.seq().flat_map(f))
    }

    /// Pairs items with their index (rayon: `enumerate`). Under an
    /// active schedule the index is the item's original position, not
    /// its (permuted) execution order.
    fn enumerate(self) -> Par<ParEnumerate<Self::Inner>> {
        Par(ParEnumerate {
            inner: self.seq(),
            pos: 0,
        })
    }

    /// Zips with another parallel iterator (rayon: `zip`). Takes an
    /// already-converted [`Par`] so scheduled sources are not wrapped
    /// twice; equal-length sides permute identically and stay aligned.
    fn zip<J>(self, other: Par<J>) -> Par<std::iter::Zip<Self::Inner, J>>
    where
        J: Iterator,
    {
        Par(self.seq().zip(other.0))
    }

    /// Copies `&T` items (rayon: `copied`).
    fn copied<'a, T>(self) -> Par<std::iter::Copied<Self::Inner>>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Copy,
    {
        Par(self.seq().copied())
    }

    /// Clones `&T` items (rayon: `cloned`).
    fn cloned<'a, T>(self) -> Par<std::iter::Cloned<Self::Inner>>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Clone,
    {
        Par(self.seq().cloned())
    }

    /// Sums the items (rayon: `sum`).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.seq().sum()
    }

    /// Counts the items (rayon: `count`).
    fn count(self) -> usize {
        self.seq().count()
    }

    /// Maximum item (rayon: `max`).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.seq().max()
    }

    /// Minimum item (rayon: `min`).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.seq().min()
    }

    /// Reduces with an identity-producing closure — rayon's signature,
    /// not [`Iterator::reduce`]'s.
    fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
    where
        Id: Fn() -> Self::Item,
        Op: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.seq().fold(identity(), op)
    }

    /// Folds into per-"thread" accumulators — rayon's signature. The
    /// sequential version produces exactly one accumulator, wrapped in a
    /// single-item parallel iterator so a following `reduce`/`sum` works.
    fn fold<T, Id, F>(self, identity: Id, fold_op: F) -> Par<std::iter::Once<T>>
    where
        Id: Fn() -> T,
        F: Fn(T, Self::Item) -> T,
    {
        Par(std::iter::once(self.seq().fold(identity(), fold_op)))
    }

    /// Collects into any [`FromIterator`] collection (rayon: `collect`).
    /// Under an active schedule, items are restored to their original
    /// order first (rayon's `collect` on indexed pipelines is
    /// execution-order independent).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let mut it = self.seq();
        if sched::is_scheduled() {
            let mut tagged: Vec<(usize, Self::Item)> = Vec::new();
            for (pos, item) in (&mut it).enumerate() {
                let idx = sched::current_task_index().unwrap_or(pos);
                tagged.push((idx, item));
            }
            tagged.sort_by_key(|t| t.0);
            tagged.into_iter().map(|t| t.1).collect()
        } else {
            it.collect()
        }
    }
}

impl<I: Iterator> ParallelIterator for Par<I> {
    type Item = I::Item;
    type Inner = I;

    fn seq(self) -> I {
        self.0
    }
}

/// Marker mirroring rayon's `IndexedParallelIterator` (every sequential
/// iterator is trivially "indexed" here).
pub trait IndexedParallelIterator: ParallelIterator {}

impl<I: Iterator> IndexedParallelIterator for Par<I> {}

/// Conversion into a [`Par`] iterator (rayon: `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Wraps `self` in a [`Par`].
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = Sched<T::IntoIter>;

    fn into_par_iter(self) -> Par<Sched<T::IntoIter>> {
        Par(Sched::new(self.into_iter()))
    }
}

/// `par_iter` on shared references (rayon: `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (typically `&'a T`).
    type Item: 'a;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = Sched<<&'a C as IntoIterator>::IntoIter>;

    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(Sched::new(self.into_iter()))
    }
}

/// `par_iter_mut` on exclusive references (rayon:
/// `IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (typically `&'a mut T`).
    type Item: 'a;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Mutably borrowing counterpart of
    /// [`IntoParallelIterator::into_par_iter`].
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = Sched<<&'a mut C as IntoIterator>::IntoIter>;

    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(Sched::new(self.into_iter()))
    }
}

/// Parallel sorting on mutable slices (rayon: `ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Unstable sort (rayon: `par_sort_unstable`).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by comparator (rayon: `par_sort_unstable_by`).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering;

    /// Unstable sort by key (rayon: `par_sort_unstable_by_key`).
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }
}

/// Logical worker count used for sizing work partitions. Reports the
/// host's available parallelism even though execution is sequential, so
/// configuration derived from it (e.g. partitions per vertex) matches
/// what the real thread pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (advisory only).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (sequential) pool; never fails.
    ///
    /// # Errors
    /// Never returns `Err`; the `Result` only mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "thread pool" that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Nominal thread count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` (on the calling thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// The rayon prelude: every trait needed for method resolution.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_sum_matches_sequential() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * x).sum();
        assert_eq!(s, (0u64..100).map(|x| x * x).sum());
    }

    #[test]
    fn fold_then_reduce_uses_rayon_signatures() {
        let (a, b) = (0u64..10)
            .into_par_iter()
            .fold(|| (0u64, 0u64), |(s, c), x| (s + x, c + 1))
            .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1 + y.1));
        assert_eq!((a, b), (45, 10));
    }

    #[test]
    fn ref_and_mut_iteration() {
        let mut v = vec![3u32, 1, 2];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v.par_iter().copied().max(), Some(30));
    }

    #[test]
    fn zip_and_enumerate() {
        let a = [1u32, 2, 3];
        let b = [10u32, 20, 30];
        let pairs: Vec<(usize, u32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| (i, x + y))
            .collect();
        assert_eq!(pairs, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn par_sort_variants() {
        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![9, 5, 3, 1]);
    }

    #[test]
    fn scheduled_enumerate_keeps_original_indices() {
        let v: Vec<u32> = (0..64).collect();
        let (pairs, report) = sched::with_schedule(3, || {
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| (i, x))
                .collect::<Vec<_>>()
        });
        assert!(report.is_clean());
        assert_eq!(report.regions, 1);
        // collect() restores original order, and every index matches.
        assert_eq!(
            pairs,
            (0u32..64).map(|x| (x as usize, x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scheduled_zip_sides_stay_aligned() {
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (100..150).collect();
        let (ok, _) = sched::with_schedule(7, || {
            a.par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| y - x == 100)
                .reduce(|| true, |p, q| p && q)
        });
        assert!(ok, "zipped pairs must stay aligned under a schedule");
    }

    #[test]
    fn scheduled_sum_matches_unscheduled() {
        let want: u64 = (0u64..100).map(|x| x * x).sum();
        for seed in [1, 2, 3] {
            let (got, _) = sched::with_schedule(seed, || {
                (0u64..100).into_par_iter().map(|x| x * x).sum::<u64>()
            });
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn schedules_actually_permute_execution_order() {
        let (order, _) = sched::with_schedule(5, || {
            let mut seen = Vec::new();
            (0u32..32).into_par_iter().for_each(|x| seen.push(x));
            seen
        });
        let identity: Vec<u32> = (0..32).collect();
        assert_ne!(order, identity, "seeded schedule should reorder tasks");
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, identity, "every task runs exactly once");
    }

    #[test]
    fn pool_installs_on_calling_thread() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
        assert!(current_num_threads() >= 1);
    }
}
