//! Multi-threaded implementation of the subset of the `rayon` API this
//! workspace uses, with a deterministic replay mode and a
//! happens-before race detector built in.
//!
//! The root manifest renames this package to the `rayon` dependency key
//! (`rayon = { path = "shims/par", package = "lotus-par" }`), so every
//! `use rayon::prelude::*` in the workspace resolves here unchanged.
//!
//! Execution model: a parallel pipeline is a materialized source
//! (`Vec` of items) plus a composable per-chunk transform
//! ([`ChunkXform`]). Terminals split the source into contiguous chunks
//! and run transform + consumer over them on the work-stealing pool
//! (the private `pool` module), merging per-chunk partial results in
//! chunk order — so
//! results (sums, collected vectors, triangle counts) are deterministic
//! and identical to a sequential run for the associative, commutative
//! reductions this workspace uses.
//!
//! Inside [`sched::with_schedule`] the same pipeline replays
//! deterministically on the calling thread: one logical task per item,
//! executed in a seeded permutation, with fork/join/combine and
//! byte-range access events recorded for the happens-before detector
//! ([`hb`]). The pool honors a process-wide thread limit
//! ([`configure_threads`], `ThreadPool::install`); with one thread (the
//! default on single-core hosts) terminals run inline on the caller.

use std::cmp::Ordering;
use std::marker::PhantomData;

pub mod hb;
mod pool;
pub mod sched;

pub use pool::configure_threads;

/// Terminals with fewer items than this run inline: chunking overhead
/// dominates below it.
const MIN_PAR_ITEMS: usize = 32;

/// Slices shorter than this sort sequentially.
const MIN_PAR_SORT: usize = 4096;

/// A composable transform applied to one contiguous chunk of source
/// items. `base` is the chunk's offset in the original source, which
/// keeps [`EnumerateX`] index-accurate under any chunking (and equal to
/// the logical task id under deterministic replay).
pub trait ChunkXform<T> {
    /// Output item type.
    type Out;

    /// Transforms one chunk.
    fn apply(&self, base: usize, items: Vec<T>) -> Vec<Self::Out>;
}

/// The identity transform: source items pass through untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityX;

impl<T> ChunkXform<T> for IdentityX {
    type Out = T;

    fn apply(&self, _base: usize, items: Vec<T>) -> Vec<T> {
        items
    }
}

/// `map` transform (see [`ParallelIterator::map`]).
#[derive(Debug, Clone)]
pub struct MapX<X, F> {
    inner: X,
    f: F,
}

impl<T, X, F, R> ChunkXform<T> for MapX<X, F>
where
    X: ChunkXform<T>,
    F: Fn(X::Out) -> R,
{
    type Out = R;

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<R> {
        self.inner
            .apply(base, items)
            .into_iter()
            .map(&self.f)
            .collect()
    }
}

/// `filter` transform (see [`ParallelIterator::filter`]).
#[derive(Debug, Clone)]
pub struct FilterX<X, F> {
    inner: X,
    f: F,
}

impl<T, X, F> ChunkXform<T> for FilterX<X, F>
where
    X: ChunkXform<T>,
    F: Fn(&X::Out) -> bool,
{
    type Out = X::Out;

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<X::Out> {
        self.inner
            .apply(base, items)
            .into_iter()
            .filter(|x| (self.f)(x))
            .collect()
    }
}

/// `flat_map_iter` transform (see [`ParallelIterator::flat_map_iter`]).
#[derive(Debug, Clone)]
pub struct FlatMapX<X, F> {
    inner: X,
    f: F,
}

impl<T, X, F, U> ChunkXform<T> for FlatMapX<X, F>
where
    X: ChunkXform<T>,
    F: Fn(X::Out) -> U,
    U: IntoIterator,
{
    type Out = U::Item;

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<U::Item> {
        self.inner
            .apply(base, items)
            .into_iter()
            .flat_map(|x| (self.f)(x))
            .collect()
    }
}

/// `enumerate` transform: pairs each item with its *original* index
/// (`base + position`), independent of execution order and chunking.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerateX;

impl<T> ChunkXform<T> for EnumerateX {
    type Out = (usize, T);

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<(usize, T)> {
        items
            .into_iter()
            .enumerate()
            .map(|(i, x)| (base + i, x))
            .collect()
    }
}

/// `copied` transform (see [`ParallelIterator::copied`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CopiedX<X> {
    inner: X,
}

impl<'a, T, U, X> ChunkXform<T> for CopiedX<X>
where
    U: 'a + Copy,
    X: ChunkXform<T, Out = &'a U>,
{
    type Out = U;

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<U> {
        self.inner.apply(base, items).into_iter().copied().collect()
    }
}

/// `cloned` transform (see [`ParallelIterator::cloned`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClonedX<X> {
    inner: X,
}

impl<'a, T, U, X> ChunkXform<T> for ClonedX<X>
where
    U: 'a + Clone,
    X: ChunkXform<T, Out = &'a U>,
{
    type Out = U;

    fn apply(&self, base: usize, items: Vec<T>) -> Vec<U> {
        self.inner.apply(base, items).into_iter().cloned().collect()
    }
}

/// Replay bookkeeping for a source materialized under an active
/// schedule: its region id and the seeded task permutation.
#[derive(Debug, Clone)]
struct SchedInfo {
    region: u32,
    perm: Vec<u32>,
}

/// A parallel pipeline: materialized source items plus the composed
/// per-chunk transform. Created by the `IntoParallel*` traits; consumed
/// by the [`ParallelIterator`] terminals.
#[derive(Debug)]
pub struct Par<T, X> {
    items: Vec<T>,
    xform: X,
    sched: Option<SchedInfo>,
}

impl<T> Par<T, IdentityX> {
    /// Materializes a source. Under an active schedule this forks a
    /// region and fixes the seeded task permutation.
    fn from_source(it: impl Iterator<Item = T>) -> Self {
        let items: Vec<T> = it.collect();
        let sched = sched::active_seed().map(|seed| SchedInfo {
            perm: sched::permutation(seed, items.len()),
            region: sched::fork_region(items.len() as u32),
        });
        Par {
            items,
            xform: IdentityX,
            sched,
        }
    }

    /// Wraps already-computed values (e.g. `fold` accumulators) without
    /// forking a replay region: the values flow in the surrounding
    /// context.
    fn raw(items: Vec<T>) -> Self {
        Par {
            items,
            xform: IdentityX,
            sched: None,
        }
    }
}

/// A terminal: consumes one chunk's transformed items into a partial
/// result and merges partials (always in chunk order).
trait Consumer<T>: Sync {
    /// Whether this terminal folds task values into the continuation —
    /// reduction terminals emit per-task combine edges under replay.
    const COMBINES: bool;

    /// Partial (and final) result type.
    type Out: Send;

    /// Consumes one chunk.
    fn consume<I: Iterator<Item = T>>(&self, items: I) -> Self::Out;

    /// Merges two partials; `a` is from the earlier chunk.
    fn merge(&self, a: Self::Out, b: Self::Out) -> Self::Out;
}

struct ForEachConsumer<F> {
    f: F,
}

impl<T, F: Fn(T) + Sync> Consumer<T> for ForEachConsumer<F> {
    const COMBINES: bool = false;
    type Out = ();

    fn consume<I: Iterator<Item = T>>(&self, items: I) {
        for x in items {
            (self.f)(x);
        }
    }

    fn merge(&self, (): (), (): ()) {}
}

struct CollectConsumer;

impl<T: Send> Consumer<T> for CollectConsumer {
    const COMBINES: bool = false;
    type Out = Vec<T>;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> Vec<T> {
        items.collect()
    }

    fn merge(&self, mut a: Vec<T>, mut b: Vec<T>) -> Vec<T> {
        a.append(&mut b);
        a
    }
}

struct SumConsumer<S>(PhantomData<fn() -> S>);

impl<T, S> Consumer<T> for SumConsumer<S>
where
    S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
{
    const COMBINES: bool = true;
    type Out = S;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> S {
        items.sum()
    }

    fn merge(&self, a: S, b: S) -> S {
        std::iter::once(a).chain(std::iter::once(b)).sum()
    }
}

struct CountConsumer;

impl<T> Consumer<T> for CountConsumer {
    const COMBINES: bool = true;
    type Out = usize;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> usize {
        items.count()
    }

    fn merge(&self, a: usize, b: usize) -> usize {
        a + b
    }
}

struct MaxConsumer;

impl<T: Ord + Send> Consumer<T> for MaxConsumer {
    const COMBINES: bool = true;
    type Out = Option<T>;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> Option<T> {
        items.max()
    }

    fn merge(&self, a: Option<T>, b: Option<T>) -> Option<T> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (x, y) => x.or(y),
        }
    }
}

struct MinConsumer;

impl<T: Ord + Send> Consumer<T> for MinConsumer {
    const COMBINES: bool = true;
    type Out = Option<T>;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> Option<T> {
        items.min()
    }

    fn merge(&self, a: Option<T>, b: Option<T>) -> Option<T> {
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }
}

struct ReduceConsumer<Id, Op> {
    identity: Id,
    op: Op,
}

impl<T, Id, Op> Consumer<T> for ReduceConsumer<Id, Op>
where
    T: Send,
    Id: Fn() -> T + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    const COMBINES: bool = true;
    type Out = T;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> T {
        items.fold((self.identity)(), &self.op)
    }

    fn merge(&self, a: T, b: T) -> T {
        (self.op)(a, b)
    }
}

struct FoldConsumer<Id, F> {
    identity: Id,
    f: F,
}

impl<T, A, Id, F> Consumer<T> for FoldConsumer<Id, F>
where
    A: Send,
    Id: Fn() -> A + Sync,
    F: Fn(A, T) -> A + Sync,
{
    const COMBINES: bool = true;
    type Out = Vec<A>;

    fn consume<I: Iterator<Item = T>>(&self, items: I) -> Vec<A> {
        vec![items.fold((self.identity)(), &self.f)]
    }

    fn merge(&self, mut a: Vec<A>, mut b: Vec<A>) -> Vec<A> {
        a.append(&mut b);
        a
    }
}

/// Runs a pipeline to completion through `consumer`.
///
/// Three paths: deterministic replay (one logical task per item, seeded
/// permutation order, full event logging), inline sequential (single
/// thread, small inputs, or scheduled-but-unforked values), or chunked
/// execution on the work-stealing pool with partials merged in chunk
/// order.
fn drive<T, X, C>(par: Par<T, X>, consumer: &C) -> C::Out
where
    T: Send,
    X: ChunkXform<T> + Sync,
    X::Out: Send,
    C: Consumer<X::Out>,
{
    let Par {
        items,
        xform,
        sched: info,
    } = par;

    if let Some(info) = info {
        // Deterministic replay: one chunk per logical task, permuted
        // execution order, original-index attribution.
        let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let mut parts: Vec<(u32, C::Out)> = Vec::with_capacity(slots.len());
        for &task in &info.perm {
            let Some(item) = slots[task as usize].take() else {
                continue;
            };
            sched::begin_task(info.region, task);
            let outs = xform.apply(task as usize, vec![item]);
            let part = consumer.consume(outs.into_iter());
            if C::COMBINES {
                sched::combine_current();
            }
            sched::end_task(info.region, task);
            parts.push((task, part));
        }
        sched::join_region(info.region);
        parts.sort_unstable_by_key(|p| p.0);
        return parts
            .into_iter()
            .map(|p| p.1)
            .reduce(|a, b| consumer.merge(a, b))
            .unwrap_or_else(|| consumer.consume(std::iter::empty()));
    }

    let threads = pool::effective_threads();
    if sched::is_scheduled() || threads <= 1 || items.len() < MIN_PAR_ITEMS {
        return consumer.consume(xform.apply(0, items).into_iter());
    }

    // Chunked execution on the pool; merge partials in chunk order.
    let n = items.len();
    let chunk_size = n.div_ceil((threads * 4).min(n));
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk_size));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let xform = &xform;
    let parts = pool::run(chunks, move |idx, chunk| {
        let base = idx as usize * chunk_size;
        consumer.consume(xform.apply(base, chunk).into_iter())
    });
    parts
        .into_iter()
        .reduce(|a, b| consumer.merge(a, b))
        .unwrap_or_else(|| consumer.consume(std::iter::empty()))
}

/// The rayon `ParallelIterator` adapter/terminal surface.
pub trait ParallelIterator: Sized {
    /// Item type, mirroring `rayon::iter::ParallelIterator::Item`.
    type Item: Send;
    /// The materialized source item type.
    type SrcItem: Send;
    /// The composed per-chunk transform.
    type Xform: ChunkXform<Self::SrcItem, Out = Self::Item> + Sync;

    /// Converts into the concrete pipeline representation.
    fn into_par(self) -> Par<Self::SrcItem, Self::Xform>;

    /// Maps each item (rayon: `map`).
    fn map<R, F>(self, f: F) -> Par<Self::SrcItem, MapX<Self::Xform, F>>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: MapX { inner: p.xform, f },
            sched: p.sched,
        }
    }

    /// Keeps items matching the predicate (rayon: `filter`).
    fn filter<F>(self, f: F) -> Par<Self::SrcItem, FilterX<Self::Xform, F>>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: FilterX { inner: p.xform, f },
            sched: p.sched,
        }
    }

    /// Maps each item to a *sequential* iterator and flattens (rayon:
    /// `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> Par<Self::SrcItem, FlatMapX<Self::Xform, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: FlatMapX { inner: p.xform, f },
            sched: p.sched,
        }
    }

    /// Pairs items with their original index (rayon: `enumerate`),
    /// independent of execution order. Only available at the source
    /// level (rayon: indexed parallel iterators).
    fn enumerate(self) -> Par<Self::SrcItem, EnumerateX>
    where
        Self: ParallelIterator<Xform = IdentityX>,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: EnumerateX,
            sched: p.sched,
        }
    }

    /// Zips with another source-level parallel iterator (rayon: `zip`).
    /// The zipped pairs form a single region under replay, so the two
    /// sides stay aligned under any schedule.
    fn zip<B>(self, other: B) -> Par<(Self::SrcItem, B::SrcItem), IdentityX>
    where
        Self: ParallelIterator<Xform = IdentityX>,
        B: ParallelIterator<Xform = IdentityX>,
    {
        let a = self.into_par();
        let b = other.into_par();
        // The pairs inherit the left region; the right source's region
        // becomes empty and joins immediately.
        if let Some(info) = b.sched {
            sched::join_region(info.region);
        }
        let items: Vec<_> = a.items.into_iter().zip(b.items).collect();
        let sched = a.sched.map(|info| {
            if info.perm.len() == items.len() {
                info
            } else {
                SchedInfo {
                    perm: sched::permutation(sched::active_seed().unwrap_or_default(), items.len()),
                    region: info.region,
                }
            }
        });
        Par {
            items,
            xform: IdentityX,
            sched,
        }
    }

    /// Copies `&T` items (rayon: `copied`).
    fn copied<'a, T>(self) -> Par<Self::SrcItem, CopiedX<Self::Xform>>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Copy + Send + Sync,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: CopiedX { inner: p.xform },
            sched: p.sched,
        }
    }

    /// Clones `&T` items (rayon: `cloned`).
    fn cloned<'a, T>(self) -> Par<Self::SrcItem, ClonedX<Self::Xform>>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Clone + Send + Sync,
    {
        let p = self.into_par();
        Par {
            items: p.items,
            xform: ClonedX { inner: p.xform },
            sched: p.sched,
        }
    }

    /// Runs `f` on every item (rayon: `for_each`).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self.into_par(), &ForEachConsumer { f });
    }

    /// Sums the items (rayon: `sum`).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self.into_par(), &SumConsumer(PhantomData))
    }

    /// Counts the items (rayon: `count`).
    fn count(self) -> usize {
        drive(self.into_par(), &CountConsumer)
    }

    /// Maximum item (rayon: `max`).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self.into_par(), &MaxConsumer)
    }

    /// Minimum item (rayon: `min`).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self.into_par(), &MinConsumer)
    }

    /// Reduces with an identity-producing closure — rayon's signature,
    /// not [`Iterator::reduce`]'s. The operation must be associative
    /// and commutative with a true identity.
    fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
    where
        Id: Fn() -> Self::Item + Sync + Send,
        Op: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self.into_par(), &ReduceConsumer { identity, op })
    }

    /// Folds into per-chunk accumulators — rayon's signature. Produces
    /// one accumulator per executed chunk (one per logical task under
    /// replay), wrapped in a parallel iterator so a following
    /// `reduce`/`sum`/`map` works.
    fn fold<A, Id, F>(self, identity: Id, fold_op: F) -> Par<A, IdentityX>
    where
        A: Send,
        Id: Fn() -> A + Sync + Send,
        F: Fn(A, Self::Item) -> A + Sync + Send,
    {
        Par::raw(drive(
            self.into_par(),
            &FoldConsumer {
                identity,
                f: fold_op,
            },
        ))
    }

    /// Collects into any [`FromIterator`] collection (rayon: `collect`).
    /// Items arrive in their original order regardless of execution
    /// order or chunking.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        drive(self.into_par(), &CollectConsumer)
            .into_iter()
            .collect()
    }
}

impl<T, X> ParallelIterator for Par<T, X>
where
    T: Send,
    X: ChunkXform<T> + Sync,
    X::Out: Send,
{
    type Item = X::Out;
    type SrcItem = T;
    type Xform = X;

    fn into_par(self) -> Par<T, X> {
        self
    }
}

impl<T, X> IntoIterator for Par<T, X>
where
    T: Send,
    X: ChunkXform<T> + Sync,
    X::Out: Send,
{
    type Item = X::Out;
    type IntoIter = std::vec::IntoIter<X::Out>;

    fn into_iter(self) -> Self::IntoIter {
        drive(self, &CollectConsumer).into_iter()
    }
}

/// Marker mirroring rayon's `IndexedParallelIterator` (every pipeline
/// here is backed by a materialized, indexable source).
pub trait IndexedParallelIterator: ParallelIterator {}

impl<T, X> IndexedParallelIterator for Par<T, X>
where
    T: Send,
    X: ChunkXform<T> + Sync,
    X::Out: Send,
{
}

/// Conversion into a [`Par`] pipeline (rayon: `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Materializes `self` into a parallel pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IntoIterator> IntoParallelIterator for T
where
    T::Item: Send,
{
    type Item = T::Item;
    type Iter = Par<T::Item, IdentityX>;

    fn into_par_iter(self) -> Par<T::Item, IdentityX> {
        Par::from_source(self.into_iter())
    }
}

/// `par_iter` on shared references (rayon: `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (typically `&'a T`).
    type Item: 'a + Send;
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing counterpart of [`IntoParallelIterator::into_par_iter`].
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = Par<Self::Item, IdentityX>;

    fn par_iter(&'a self) -> Par<Self::Item, IdentityX> {
        Par::from_source(self.into_iter())
    }
}

/// `par_iter_mut` on exclusive references (rayon:
/// `IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item type (typically `&'a mut T`).
    type Item: 'a + Send;
    /// The resulting pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Mutably borrowing counterpart of
    /// [`IntoParallelIterator::into_par_iter`].
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
    <&'a mut C as IntoIterator>::Item: Send,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = Par<Self::Item, IdentityX>;

    fn par_iter_mut(&'a mut self) -> Par<Self::Item, IdentityX> {
        Par::from_source(self.into_iter())
    }
}

/// Parallel sorting on mutable slices (rayon: `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send + Sync> {
    /// Unstable sort (rayon: `par_sort_unstable`).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by comparator (rayon: `par_sort_unstable_by`).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;

    /// Unstable sort by key (rayon: `par_sort_unstable_by_key`).
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send + Sync> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, T::cmp);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_sort_impl(self, compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_impl(self, |a, b| key(a).cmp(&key(b)));
    }
}

/// Parallel index-permutation sort: chunked index sorts on the pool, a
/// sequential round-based merge, then an in-place cycle-following
/// permutation of the data. Ties break on the original index, so the
/// result is deterministic for any thread count.
fn par_sort_impl<T, F>(data: &mut [T], compare: F)
where
    T: Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    let threads = pool::effective_threads();
    if sched::is_scheduled() || threads <= 1 || n < MIN_PAR_SORT {
        data.sort_unstable_by(compare);
        return;
    }

    let chunk_size = n.div_ceil(threads);
    let idx_chunks: Vec<Vec<u32>> = (0..n as u32)
        .collect::<Vec<u32>>()
        .chunks(chunk_size)
        .map(<[u32]>::to_vec)
        .collect();
    let shared: &[T] = data;
    let by_index =
        |i: u32, j: u32| compare(&shared[i as usize], &shared[j as usize]).then_with(|| i.cmp(&j));
    let mut runs = pool::run(idx_chunks, |_, mut chunk| {
        chunk.sort_unstable_by(|&i, &j| by_index(i, j));
        chunk
    });

    // Merge runs pairwise in rounds (log k passes over the indices).
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_runs(a, b, &by_index)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    let Some(idx) = runs.pop() else {
        return;
    };

    // `idx[i]` is where the element belonging at `i` currently lives;
    // invert it so `pos[j]` is where the element at `j` must go, then
    // follow swap cycles — `data[i] = old_data[idx[i]]` for every `i`.
    let mut pos = vec![0u32; n];
    for (i, &j) in idx.iter().enumerate() {
        pos[j as usize] = i as u32;
    }
    for i in 0..n {
        while pos[i] as usize != i {
            let j = pos[i] as usize;
            data.swap(i, j);
            pos.swap(i, j);
        }
    }
}

/// Merges two sorted index runs.
fn merge_runs<C: Fn(u32, u32) -> Ordering>(a: Vec<u32>, b: Vec<u32>, less: &C) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&x), Some(&y)) => {
                if less(x, y) == Ordering::Greater {
                    out.extend(ib.next());
                } else {
                    out.extend(ia.next());
                }
            }
            (Some(_), None) => out.extend(ia.by_ref()),
            (None, Some(_)) => out.extend(ib.by_ref()),
            (None, None) => break,
        }
    }
    out
}

/// The number of logical executors parallel work may currently use:
/// the configured limit ([`configure_threads`] / `ThreadPool::install`)
/// or, unlimited, the host's available parallelism.
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a thread count for pools built from this builder.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle; never fails.
    ///
    /// # Errors
    /// Never returns `Err`; the `Result` only mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A handle applying a thread limit to the process-global pool.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Thread count this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread limit installed process-wide,
    /// restoring the previous limit afterwards. Parallel work started
    /// by `op` (on any thread) uses at most this many executors.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        pool::install_limit(self.num_threads, op)
    }
}

/// The rayon prelude: every trait needed for method resolution.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_sum_matches_sequential() {
        let s: u64 = (0u64..100).into_par_iter().map(|x| x * x).sum();
        assert_eq!(s, (0u64..100).map(|x| x * x).sum());
    }

    #[test]
    fn fold_then_reduce_uses_rayon_signatures() {
        let (a, b) = (0u64..10)
            .into_par_iter()
            .fold(|| (0u64, 0u64), |(s, c), x| (s + x, c + 1))
            .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1 + y.1));
        assert_eq!((a, b), (45, 10));
    }

    #[test]
    fn ref_and_mut_iteration() {
        let mut v = vec![3u32, 1, 2];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v.par_iter().copied().max(), Some(30));
    }

    #[test]
    fn zip_and_enumerate() {
        let a = [1u32, 2, 3];
        let b = [10u32, 20, 30];
        let pairs: Vec<(usize, u32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| (i, x + y))
            .collect();
        assert_eq!(pairs, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn filter_and_flat_map() {
        let v: Vec<u32> = (0..10)
            .into_par_iter()
            .filter(|x| x % 2 == 0)
            .flat_map_iter(|x| [x, x + 100])
            .collect();
        assert_eq!(v, vec![0, 100, 2, 102, 4, 104, 6, 106, 8, 108]);
    }

    #[test]
    fn par_sort_variants() {
        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, vec![9, 5, 3, 1]);
    }

    #[test]
    fn par_sort_large_is_correct_on_the_pool() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        pool.install(|| {
            let mut v: Vec<u64> = (0..20_000u64)
                .map(|i| i.wrapping_mul(0x9E37) % 4096)
                .collect();
            let mut want = v.clone();
            want.sort_unstable();
            v.par_sort_unstable();
            assert_eq!(v, want);
        });
    }

    #[test]
    fn parallel_terminals_match_sequential_on_the_pool() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        pool.install(|| {
            let s: u64 = (0u64..10_000).into_par_iter().map(|x| x * 3).sum();
            assert_eq!(s, (0u64..10_000).map(|x| x * 3).sum());
            let collected: Vec<u32> = (0u32..5_000).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(collected, (1u32..=5_000).collect::<Vec<_>>());
            let m = (0i64..2_048).into_par_iter().map(|x| -x).min();
            assert_eq!(m, Some(-2_047));
        });
    }

    #[test]
    fn zero_length_pipelines_are_fine() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.par_iter().copied().sum::<u32>(), 0);
        assert_eq!(empty.par_iter().count(), 0);
        assert_eq!(empty.par_iter().max(), None);
        let collected: Vec<u32> = empty.par_iter().copied().collect();
        assert!(collected.is_empty());
        let folded = empty
            .par_iter()
            .fold(|| 0u32, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(folded, 0);
    }

    #[test]
    fn nested_parallel_for_inside_a_task() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        pool.install(|| {
            let total: u64 = (0u64..64)
                .into_par_iter()
                .map(|x| (0u64..64).into_par_iter().map(|y| x + y).sum::<u64>())
                .sum();
            let want: u64 = (0u64..64)
                .map(|x| (0u64..64).map(|y| x + y).sum::<u64>())
                .sum();
            assert_eq!(total, want);
        });
    }

    #[test]
    fn scheduled_enumerate_keeps_original_indices() {
        let v: Vec<u32> = (0..64).collect();
        let (pairs, report) = sched::with_schedule(3, || {
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| (i, x))
                .collect::<Vec<_>>()
        });
        assert!(report.is_clean());
        assert_eq!(report.regions, 1);
        // collect() restores original order, and every index matches.
        assert_eq!(
            pairs,
            (0u32..64).map(|x| (x as usize, x)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scheduled_zip_sides_stay_aligned() {
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (100..150).collect();
        let (ok, report) = sched::with_schedule(7, || {
            a.par_iter()
                .zip(b.par_iter())
                .map(|(&x, &y)| y - x == 100)
                .reduce(|| true, |p, q| p && q)
        });
        assert!(ok, "zipped pairs must stay aligned under a schedule");
        assert!(report.is_clean());
    }

    #[test]
    fn scheduled_sum_matches_unscheduled() {
        let want: u64 = (0u64..100).map(|x| x * x).sum();
        for seed in [1, 2, 3] {
            let (got, _) = sched::with_schedule(seed, || {
                (0u64..100).into_par_iter().map(|x| x * x).sum::<u64>()
            });
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn schedules_actually_permute_execution_order() {
        let seen = std::sync::Mutex::new(Vec::new());
        let ((), _) = sched::with_schedule(5, || {
            (0u32..32).into_par_iter().for_each(|x| {
                seen.lock().expect("poisoned").push(x);
            });
        });
        let order = seen.into_inner().expect("poisoned");
        let identity: Vec<u32> = (0..32).collect();
        assert_ne!(order, identity, "seeded schedule should reorder tasks");
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, identity, "every task runs exactly once");
    }

    #[test]
    fn pool_installs_a_thread_limit() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(
            pool.install(|| {
                assert_eq!(current_num_threads(), 4);
                7
            }),
            7
        );
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn worker_panic_reaches_the_caller_and_pool_survives() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        pool.install(|| {
            let r = std::panic::catch_unwind(|| {
                (0u32..4_096).into_par_iter().for_each(|x| {
                    assert!(x != 2_000, "planted task panic");
                });
            });
            assert!(r.is_err(), "panic must propagate to the driving thread");
            // The pool keeps working after a panicked region.
            let s: u64 = (0u64..4_096).into_par_iter().sum();
            assert_eq!(s, 4_096 * 4_095 / 2);
        });
    }
}
