//! The work-stealing thread pool behind the rayon-compatible surface.
//!
//! One process-global pool, spawned lazily on first parallel use. Each
//! worker owns a chunk deque (`Mutex<VecDeque<Entry>>`); an [`Entry`] is
//! a *range* of chunk indices into one region's payload table, so
//! steal-half is a constant-time range split and never copies work
//! items. Workers pop from the front of their own deque, re-queue the
//! remainder of a popped range, and steal the far half of another
//! worker's front entry when idle. Idle workers park on a condvar with a
//! timeout backstop, so a missed wakeup costs latency, never progress.
//!
//! A parallel region is driven by the thread that called into the shim
//! (see [`run`]): it keeps the first range for itself, deals the rest to
//! the workers, executes its share, then *sweeps* the deques for any of
//! its own unclaimed entries before blocking on the region's completion
//! latch. The sweep is what makes nested regions deadlock-free: a driver
//! never waits on a chunk that no running thread has claimed — it takes
//! the chunk back and runs it itself.
//!
//! A panic inside a chunk is caught per-chunk, poisons the region
//! (remaining chunk bodies are skipped), and is re-thrown on the driver
//! thread once the region completes — so `lotus-resilience`'s
//! `catch_unwind` isolation still surfaces it as a `PhasePanic`, and the
//! workers themselves survive for the next region.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use lotus_telemetry::counters::{self, Counter};

/// Upper bound on pool worker threads (executors = workers + driver).
const MAX_WORKERS: usize = 63;

/// How long a parked worker sleeps before re-checking for work. A pure
/// backstop: pushes notify the condvar, so this only bounds the cost of
/// a lost wakeup.
const PARK_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a driver waits on the completion latch between sweeps.
const DRIVER_WAIT: Duration = Duration::from_millis(1);

/// Requested thread count; 0 means "use available parallelism".
static LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Locks a mutex, recovering the guard if a panicking thread poisoned
/// it (the pool's shared state stays consistent under per-chunk
/// `catch_unwind`, so poisoning carries no information here).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The number of logical executors parallel work may use right now:
/// the configured limit, or the host's available parallelism when no
/// limit is set. Always at least 1 (the calling thread).
pub(crate) fn effective_threads() -> usize {
    match LIMIT.load(Ordering::Acquire) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Sets the process-wide thread limit. `0` restores the default
/// (available parallelism). Counts above the host's core count are
/// honored (oversubscription), which keeps multi-threaded code paths
/// testable on single-core machines.
pub fn configure_threads(n: usize) {
    LIMIT.store(n.min(MAX_WORKERS + 1), Ordering::Release);
    if n > 1 {
        ensure_workers(n - 1);
        wake_all();
    }
}

/// Runs `op` with the thread limit set to `n`, restoring the previous
/// limit afterwards (panic-safe). Backs `ThreadPool::install`.
pub(crate) fn install_limit<R>(n: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LIMIT.store(self.0, Ordering::Release);
        }
    }
    let _restore = Restore(LIMIT.load(Ordering::Acquire));
    configure_threads(n);
    op()
}

/// One schedulable unit: chunks `lo..hi` of the region behind `state`.
#[derive(Clone, Copy)]
struct Entry {
    /// Type-erased pointer to the driver's stack-held `RegionState`.
    state: *const (),
    /// Monomorphized executor for one chunk of that region.
    // SAFETY: the pointer is only ever called with this entry's own
    // `state`, satisfying `exec_chunk`'s contract (see the `Send`
    // justification below for why the region outlives the entry).
    exec: unsafe fn(*const (), u32),
    lo: u32,
    hi: u32,
}

// SAFETY: `state` points into the driving thread's stack frame, which
// outlives every Entry referring to it: `run` does not return until the
// region's completion latch (set under `done`'s mutex by the thread that
// executes the last chunk) has been observed, and an Entry exists in a
// deque only while its chunks are unexecuted — every pop either runs the
// chunks or re-queues the remainder, and the driver's sweep reclaims
// stranded entries before each latch wait.
unsafe impl Send for Entry {}

/// The process-global pool: per-worker deques plus the park/wake state.
struct Pool {
    deques: Vec<Mutex<VecDeque<Entry>>>,
    /// Count of currently parked workers, guarded with the wake condvar.
    sleep: Mutex<usize>,
    wake: Condvar,
    /// Entries sitting in deques; parking predicate only (a stale zero
    /// is corrected by the park timeout).
    pending: AtomicUsize,
    /// How many worker threads have been spawned so far.
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        deques: (0..MAX_WORKERS)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect(),
        sleep: Mutex::new(0),
        wake: Condvar::new(),
        pending: AtomicUsize::new(0),
        spawned: Mutex::new(0),
    })
}

/// Spawns workers until at least `k` exist (capped at [`MAX_WORKERS`]).
/// A failed spawn is tolerated: entries dealt to a missing worker are
/// reclaimed by the driver's sweep.
fn ensure_workers(k: usize) {
    let p = pool();
    let mut spawned = lock(&p.spawned);
    while *spawned < k.min(MAX_WORKERS) {
        let me = *spawned;
        let ok = std::thread::Builder::new()
            .name(format!("lotus-par-{me}"))
            .spawn(move || worker_loop(me))
            .is_ok();
        if !ok {
            break;
        }
        *spawned += 1;
    }
}

/// Wakes every parked worker (after a limit change or a push).
fn wake_all() {
    let p = pool();
    let sleepers = lock(&p.sleep);
    if *sleepers > 0 {
        p.wake.notify_all();
    }
}

fn worker_loop(me: usize) {
    let p = pool();
    loop {
        // Workers beyond the active limit park until reconfigured.
        let active = me + 1 < effective_threads();
        if active {
            if let Some(e) = pop_own(p, me) {
                process(p, me, e);
                continue;
            }
            if let Some(e) = steal(p, me) {
                counters::add(Counter::PoolSteals, 1);
                process(p, me, e);
                continue;
            }
        }
        park(p, active);
    }
}

/// Parks until woken or the timeout backstop fires. An active worker
/// re-checks `pending` under the lock so a push cannot slip between its
/// last empty scan and the wait.
fn park(p: &Pool, active: bool) {
    let mut sleepers = lock(&p.sleep);
    if active && p.pending.load(Ordering::Acquire) > 0 {
        return;
    }
    *sleepers += 1;
    counters::add(Counter::PoolParks, 1);
    let (mut sleepers, _) = p
        .wake
        .wait_timeout(sleepers, PARK_TIMEOUT)
        .unwrap_or_else(PoisonError::into_inner);
    *sleepers = sleepers.saturating_sub(1);
}

fn pop_own(p: &Pool, me: usize) -> Option<Entry> {
    let e = lock(&p.deques[me]).pop_front();
    if e.is_some() {
        p.pending.fetch_sub(1, Ordering::AcqRel);
    }
    e
}

/// Steals the far half of another worker's front entry (or the whole
/// entry if it holds a single chunk).
fn steal(p: &Pool, me: usize) -> Option<Entry> {
    let n = p.deques.len();
    for k in 1..n {
        let victim = (me + k) % n;
        let mut dq = lock(&p.deques[victim]);
        let Some(front) = dq.front_mut() else {
            continue;
        };
        if front.hi - front.lo > 1 {
            let mid = front.lo + (front.hi - front.lo) / 2;
            let stolen = Entry { lo: mid, ..*front };
            front.hi = mid;
            return Some(stolen);
        }
        let e = *front;
        dq.pop_front();
        p.pending.fetch_sub(1, Ordering::AcqRel);
        return Some(e);
    }
    None
}

/// Executes the first chunk of `e`, re-queueing the remainder so idle
/// workers can steal it.
fn process(p: &Pool, me: usize, e: Entry) {
    if e.hi - e.lo > 1 {
        lock(&p.deques[me]).push_front(Entry { lo: e.lo + 1, ..e });
        p.pending.fetch_add(1, Ordering::AcqRel);
        wake_all();
    }
    counters::add(Counter::PoolTasks, 1);
    // SAFETY: the entry came from a deque, so its region is still live
    // (see the `Send` justification on `Entry`).
    unsafe { (e.exec)(e.state, e.lo) };
}

/// Shared state of one in-flight parallel region, owned by the driving
/// thread's stack frame.
struct RegionState<T, R, F> {
    /// Take-once payload per chunk.
    payloads: Vec<Mutex<Option<T>>>,
    results: Mutex<Vec<(u32, R)>>,
    f: F,
    /// Chunks not yet executed (or skipped); the completion latch arms
    /// when this reaches zero.
    remaining: AtomicUsize,
    /// Set on the first panic; later chunk bodies are skipped.
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag, written under its mutex by whichever thread
    /// executes the last chunk — the only signal the driver trusts, so
    /// the region state cannot be freed while a completer is mid-notify.
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Executes chunk `idx` of the region behind `state`.
///
/// # Safety
/// `state` must point to a live `RegionState<T, R, F>` whose payload
/// table has at least `idx + 1` slots.
unsafe fn exec_chunk<T, R, F: Fn(u32, T) -> R>(state: *const (), idx: u32) {
    // SAFETY: guaranteed by the caller contract above.
    let s = unsafe { &*state.cast::<RegionState<T, R, F>>() };
    let payload = lock(&s.payloads[idx as usize]).take();
    if let Some(p) = payload {
        if s.poisoned.load(Ordering::Acquire) {
            drop(p);
        } else {
            match catch_unwind(AssertUnwindSafe(|| (s.f)(idx, p))) {
                Ok(r) => lock(&s.results).push((idx, r)),
                Err(e) => {
                    s.poisoned.store(true, Ordering::Release);
                    let mut slot = lock(&s.panic);
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
        }
    }
    if s.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut flag = lock(&s.done);
        *flag = true;
        s.done_cv.notify_all();
    }
}

/// Runs `f` over every payload on the pool and returns the results in
/// payload order. The calling thread drives: it executes its own share,
/// reclaims stranded entries, and only then blocks on the completion
/// latch. If any chunk panicked, the (first) payload is re-thrown here
/// on the calling thread once all chunks have finished or been skipped.
pub(crate) fn run<T, R, F>(payloads: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(u32, T) -> R + Sync,
{
    let total = payloads.len();
    let execs = effective_threads().min(total);
    if execs <= 1 || total == 0 {
        // Inline: sequential semantics, panics propagate naturally.
        return payloads
            .into_iter()
            .enumerate()
            .map(|(i, p)| f(i as u32, p))
            .collect();
    }
    ensure_workers(execs - 1);

    let state = RegionState {
        payloads: payloads.into_iter().map(|p| Mutex::new(Some(p))).collect(),
        results: Mutex::new(Vec::with_capacity(total)),
        f,
        remaining: AtomicUsize::new(total),
        poisoned: AtomicBool::new(false),
        panic: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    };
    let state_ptr: *const () = (&raw const state).cast();
    let exec = exec_chunk::<T, R, F>;

    let p = pool();
    let workers = (execs - 1).min(*lock(&p.spawned));
    // Deal `total` chunks into `workers + 1` contiguous ranges; the
    // driver keeps the first.
    let shares = workers + 1;
    let per = total / shares;
    let extra = total % shares;
    let mut begin = 0u32;
    let mut own = 0u32..0u32;
    for share in 0..shares {
        let len = per + usize::from(share < extra);
        let range = begin..begin + len as u32;
        begin = range.end;
        if share == 0 {
            own = range;
        } else if !range.is_empty() {
            lock(&p.deques[share - 1]).push_back(Entry {
                state: state_ptr,
                exec,
                lo: range.start,
                hi: range.end,
            });
            p.pending.fetch_add(1, Ordering::AcqRel);
        }
    }
    wake_all();

    for idx in own {
        counters::add(Counter::PoolTasks, 1);
        // SAFETY: `state` is live for the whole of this function.
        unsafe { exec(state_ptr, idx) };
    }
    loop {
        sweep(p, state_ptr, exec);
        let flag = lock(&state.done);
        if *flag {
            break;
        }
        let (flag, _) = state
            .done_cv
            .wait_timeout(flag, DRIVER_WAIT)
            .unwrap_or_else(PoisonError::into_inner);
        if *flag {
            break;
        }
    }

    if let Some(payload) = lock(&state.panic).take() {
        resume_unwind(payload);
    }
    let mut results = std::mem::take(&mut *lock(&state.results));
    results.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(results.len(), total);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Reclaims this region's unclaimed entries from every deque and runs
/// their chunks on the driving thread.
// SAFETY: only called from `run` with that region's own live
// `state_ptr`/`exec` pair, and only entries matching `state_ptr` are
// executed here.
fn sweep(p: &Pool, state_ptr: *const (), exec: unsafe fn(*const (), u32)) {
    let mut mine = Vec::new();
    for dq in &p.deques {
        let mut dq = lock(dq);
        if dq.is_empty() {
            continue;
        }
        let before = dq.len();
        let mut keep = VecDeque::with_capacity(before);
        while let Some(e) = dq.pop_front() {
            if std::ptr::eq(e.state, state_ptr) {
                mine.push(e);
            } else {
                keep.push_back(e);
            }
        }
        *dq = keep;
        let taken = before - dq.len();
        if taken > 0 {
            p.pending.fetch_sub(taken, Ordering::AcqRel);
        }
    }
    for e in mine {
        for idx in e.lo..e.hi {
            counters::add(Counter::PoolTasks, 1);
            // SAFETY: the entry referenced this driver's own live region.
            unsafe { exec(e.state, idx) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that reconfigure the global limit.
    fn limit_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn run_returns_results_in_payload_order() {
        let _g = limit_lock();
        install_limit(4, || {
            let out = run((0..100u32).collect(), |_, x| x * 2);
            assert_eq!(out, (0..100u32).map(|x| x * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn run_handles_empty_and_single() {
        let _g = limit_lock();
        install_limit(4, || {
            assert_eq!(run(Vec::<u32>::new(), |_, x| x), Vec::<u32>::new());
            assert_eq!(run(vec![7u32], |_, x| x + 1), vec![8]);
        });
    }

    #[test]
    fn panic_in_chunk_resumes_on_driver_and_pool_survives() {
        let _g = limit_lock();
        install_limit(4, || {
            let r = catch_unwind(AssertUnwindSafe(|| {
                run((0..64u32).collect(), |_, x| {
                    assert!(x != 13, "planted chunk panic");
                    x
                })
            }));
            assert!(r.is_err(), "chunk panic must reach the driver");
            // The pool still works after the panic.
            let ok = run((0..64u32).collect(), |_, x| x + 1);
            assert_eq!(ok.len(), 64);
        });
    }

    #[test]
    fn nested_regions_complete() {
        let _g = limit_lock();
        install_limit(4, || {
            let outer = run((0..8u32).collect(), |_, x| {
                let inner = run((0..16u32).collect(), move |_, y| u64::from(x + y));
                inner.iter().sum::<u64>()
            });
            let want: Vec<u64> = (0..8u64).map(|x| (0..16u64).map(|y| x + y).sum()).collect();
            assert_eq!(outer, want);
        });
    }

    #[test]
    fn install_restores_previous_limit() {
        let _g = limit_lock();
        let before = LIMIT.load(Ordering::Acquire);
        install_limit(3, || {
            assert_eq!(effective_threads(), 3);
        });
        assert_eq!(LIMIT.load(Ordering::Acquire), before);
    }
}
