//! Deterministic scheduler mode and shadow access log.
//!
//! Inside [`with_schedule`], every parallel-for source materializes its
//! items and executes them in a seeded permutation (the "schedule"),
//! while each logical task is tagged with its *original* index so that
//! `enumerate` and the access log stay index-accurate regardless of
//! execution order. Kernels declare the shared memory they touch with
//! [`log_write`] / [`log_read`]; after the closure returns, the log is
//! checked for overlapping unsynchronized accesses across tasks and the
//! result is returned as a [`RaceReport`].
//!
//! The permutation of a parallel region depends only on `(seed, len)`.
//! This is deliberate: the two sides of a `zip` then permute
//! identically, so zipped pairs stay aligned under any schedule.
//!
//! Scheduled mode assumes reductions are commutative (every reduction
//! in this workspace is a sum/max/min or a tuple thereof). Outside
//! `with_schedule` the wrapper passes items straight through and the
//! log functions return immediately after one thread-local check.

use std::cell::{Cell, RefCell};

/// Sentinel task id for accesses made outside any parallel region.
const SERIAL_TASK: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Current {
    region: u32,
    task: u32,
}

thread_local! {
    /// Active schedule seed; `None` means pass-through mode.
    static MODE: Cell<Option<u64>> = const { Cell::new(None) };
    /// Monotonic id of the next materialized parallel region.
    static REGION: Cell<u32> = const { Cell::new(0) };
    /// The logical task currently executing, if any.
    static CURRENT: Cell<Option<Current>> = const { Cell::new(None) };
    /// Shadow access log, drained by [`with_schedule`].
    static LOG: RefCell<Vec<Access>> = const { RefCell::new(Vec::new()) };
}

/// One logged access: a byte range touched by a logical task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Parallel region (one per materialized source) the access ran in.
    pub region: u32,
    /// Original (pre-permutation) index of the logical task, or
    /// `u32::MAX` for serial code between regions.
    pub task: u32,
    /// True for writes, false for reads.
    pub write: bool,
    /// Start address of the range.
    pub base: usize,
    /// Length of the range in bytes.
    pub len: usize,
    /// Call-site label, e.g. `"preprocess.he_out"`.
    pub label: &'static str,
}

impl Access {
    fn end(&self) -> usize {
        self.base.saturating_add(self.len)
    }

    fn overlaps(&self, other: &Access) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Two tasks of one region touched overlapping bytes and at least one
/// of them wrote: a data race under any real parallel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The region both accesses belong to.
    pub region: u32,
    /// Label of the (first) writing access.
    pub label_a: &'static str,
    /// Task id of the writing access.
    pub task_a: u32,
    /// Label of the conflicting access.
    pub label_b: &'static str,
    /// Task id of the conflicting access.
    pub task_b: u32,
    /// True when both sides wrote (write-write); false for read-write.
    pub write_write: bool,
    /// Number of overlapping bytes.
    pub overlap_len: usize,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.write_write {
            "write-write"
        } else {
            "read-write"
        };
        write!(
            f,
            "{kind} race in region {}: {} (task {}) overlaps {} (task {}) by {} byte(s)",
            self.region, self.label_a, self.task_a, self.label_b, self.task_b, self.overlap_len
        )
    }
}

/// Maximum races a [`RaceReport`] materializes; further ones are counted.
pub const MAX_RACES_RECORDED: usize = 100;

/// Outcome of one scheduled run: detected races plus coverage counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// Detected races (at most [`MAX_RACES_RECORDED`]).
    pub races: Vec<Race>,
    /// Total races found, including ones beyond the recording cap.
    pub total_races: usize,
    /// Parallel regions materialized during the run.
    pub regions: u32,
    /// Accesses logged during the run.
    pub accesses: usize,
}

impl RaceReport {
    /// True when no conflicting access pair was found.
    pub fn is_clean(&self) -> bool {
        self.total_races == 0
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "ok: no races ({} region(s), {} access(es) checked)",
                self.regions, self.accesses
            );
        }
        writeln!(f, "{} race(s):", self.total_races)?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        if self.total_races > self.races.len() {
            writeln!(f, "  ... and {} more", self.total_races - self.races.len())?;
        }
        Ok(())
    }
}

/// Restores the previous scheduler state on drop (panic-safe).
struct ModeGuard {
    prev_mode: Option<u64>,
    prev_region: u32,
    prev_current: Option<Current>,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        MODE.with(|m| m.set(self.prev_mode));
        REGION.with(|r| r.set(self.prev_region));
        CURRENT.with(|c| c.set(self.prev_current));
    }
}

/// Runs `f` with the deterministic scheduler active, then detects races
/// in the shadow access log. Nested calls are allowed; the inner call
/// sees only its own accesses and restores the outer schedule on exit.
pub fn with_schedule<R>(seed: u64, f: impl FnOnce() -> R) -> (R, RaceReport) {
    let guard = ModeGuard {
        prev_mode: MODE.with(Cell::get),
        prev_region: REGION.with(Cell::get),
        prev_current: CURRENT.with(Cell::get),
    };
    let log_mark = LOG.with(|l| l.borrow().len());
    MODE.with(|m| m.set(Some(seed)));
    REGION.with(|r| r.set(0));
    CURRENT.with(|c| c.set(None));
    let result = f();
    let regions = REGION.with(Cell::get);
    let accesses: Vec<Access> = LOG.with(|l| l.borrow_mut().split_off(log_mark));
    drop(guard);
    let mut report = detect(&accesses);
    report.regions = regions;
    report.accesses = accesses.len();
    (result, report)
}

/// True while a [`with_schedule`] scope is active on this thread.
pub fn is_scheduled() -> bool {
    MODE.with(Cell::get).is_some()
}

pub(crate) fn active_seed() -> Option<u64> {
    MODE.with(Cell::get)
}

pub(crate) fn next_region() -> u32 {
    REGION.with(|r| {
        let id = r.get();
        r.set(id.wrapping_add(1));
        id
    })
}

pub(crate) fn set_current(region: u32, task: u32) {
    CURRENT.with(|c| c.set(Some(Current { region, task })));
}

pub(crate) fn clear_current() {
    CURRENT.with(|c| c.set(None));
}

/// Original index of the logical task currently executing under an
/// active schedule, if any. Drives index-accurate `enumerate`.
pub(crate) fn current_task_index() -> Option<usize> {
    if !is_scheduled() {
        return None;
    }
    CURRENT.with(Cell::get).map(|c| c.task as usize)
}

fn log_access(write: bool, base: usize, len: usize, label: &'static str) {
    if !is_scheduled() || len == 0 {
        return;
    }
    let (region, task) = match CURRENT.with(Cell::get) {
        Some(c) => (c.region, c.task),
        None => (u32::MAX, SERIAL_TASK),
    };
    LOG.with(|l| {
        l.borrow_mut().push(Access {
            region,
            task,
            write,
            base,
            len,
            label,
        });
    });
}

/// Declares that the current logical task writes `slice` (no-op outside
/// [`with_schedule`]). Call this for every shared range a task writes
/// without synchronization; atomics are synchronized and must not be
/// logged.
#[inline]
pub fn log_write<T>(slice: &[T], label: &'static str) {
    log_access(
        true,
        slice.as_ptr() as usize,
        std::mem::size_of_val(slice),
        label,
    );
}

/// Declares that the current logical task reads `slice` (no-op outside
/// [`with_schedule`]).
#[inline]
pub fn log_read<T>(slice: &[T], label: &'static str) {
    log_access(
        false,
        slice.as_ptr() as usize,
        std::mem::size_of_val(slice),
        label,
    );
}

/// SplitMix64 step (same generator the fault-injection planner uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded Fisher–Yates permutation of `0..len`. Depends only on
/// `(seed, len)` so equal-length sources (the two sides of a `zip`)
/// permute identically.
pub(crate) fn permutation(seed: u64, len: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..len as u32).collect();
    let mut state = seed ^ (len as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for i in (1..len).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Overlap detection over one run's access log.
///
/// Per region: write-write overlaps via a sorted sweep, read-write
/// overlaps by probing each read against the sorted writes (read-read
/// pairs are never compared). Same-task overlaps are not races.
fn detect(accesses: &[Access]) -> RaceReport {
    let mut report = RaceReport::default();
    let mut regions: Vec<u32> = accesses.iter().map(|a| a.region).collect();
    regions.sort_unstable();
    regions.dedup();

    for region in regions {
        let mut writes: Vec<&Access> = accesses
            .iter()
            .filter(|a| a.region == region && a.write)
            .collect();
        writes.sort_by_key(|a| (a.base, a.task));

        // Running prefix max of write ends, for backward overlap scans.
        let mut prefix_max_end = Vec::with_capacity(writes.len());
        let mut max_end = 0usize;
        for w in &writes {
            max_end = max_end.max(w.end());
            prefix_max_end.push(max_end);
        }

        let mut record = |a: &Access, b: &Access, write_write: bool| {
            let overlap = a.end().min(b.end()) - a.base.max(b.base);
            report.total_races += 1;
            if report.races.len() < MAX_RACES_RECORDED {
                report.races.push(Race {
                    region,
                    label_a: a.label,
                    task_a: a.task,
                    label_b: b.label,
                    task_b: b.task,
                    write_write,
                    overlap_len: overlap,
                });
            }
        };

        // Write-write: scan each write backward while an earlier write
        // can still reach it.
        for (i, w) in writes.iter().enumerate() {
            for j in (0..i).rev() {
                if prefix_max_end[j] <= w.base {
                    break;
                }
                let prev = writes[j];
                if prev.task != w.task && prev.overlaps(w) {
                    record(prev, w, true);
                }
            }
        }

        // Read-write: probe each read against the writes overlapping it.
        for r in accesses.iter().filter(|a| a.region == region && !a.write) {
            let start = writes.partition_point(|w| w.base < r.end());
            for j in (0..start).rev() {
                if prefix_max_end[j] <= r.base {
                    break;
                }
                let w = writes[j];
                if w.task != r.task && w.overlaps(r) {
                    record(w, r, false);
                }
            }
        }
    }

    report.races.sort_by(|a, b| {
        (a.region, a.label_a, a.task_a, a.label_b, a.task_b)
            .cmp(&(b.region, b.label_a, b.task_a, b.label_b, b.task_b))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic_and_bijective() {
        let p1 = permutation(7, 100);
        let p2 = permutation(7, 100);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(p1, sorted, "seeded permutation should shuffle");
        assert_ne!(permutation(8, 100), p1, "different seeds differ");
    }

    #[test]
    fn no_mode_means_no_logging() {
        let data = [1u32, 2, 3];
        log_write(&data, "test.unscheduled");
        let ((), report) = with_schedule(1, || {});
        assert_eq!(report.accesses, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let data = [0u8; 64];
        let ((), report) = with_schedule(3, || {
            set_current(0, 0);
            log_write(&data[0..32], "a");
            set_current(0, 1);
            log_write(&data[32..64], "b");
            clear_current();
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.accesses, 2);
    }

    #[test]
    fn overlapping_writes_race() {
        let data = [0u8; 64];
        let ((), report) = with_schedule(3, || {
            set_current(0, 0);
            log_write(&data[0..40], "a");
            set_current(0, 1);
            log_write(&data[32..64], "b");
            clear_current();
        });
        assert_eq!(report.total_races, 1, "{report}");
        let race = &report.races[0];
        assert!(race.write_write);
        assert_eq!(race.overlap_len, 8);
        assert_eq!((race.task_a, race.task_b), (0, 1));
    }

    #[test]
    fn read_write_overlap_races_but_read_read_does_not() {
        let data = [0u8; 16];
        let ((), report) = with_schedule(5, || {
            set_current(0, 0);
            log_read(&data[..], "r0");
            set_current(0, 1);
            log_read(&data[..], "r1");
            set_current(0, 2);
            log_write(&data[4..8], "w");
            clear_current();
        });
        // The write conflicts with both reads; the reads do not conflict.
        assert_eq!(report.total_races, 2, "{report}");
        assert!(report.races.iter().all(|r| !r.write_write));
    }

    #[test]
    fn same_task_overlap_is_not_a_race() {
        let data = [0u8; 8];
        let ((), report) = with_schedule(9, || {
            set_current(0, 4);
            log_write(&data[..], "first");
            log_write(&data[..], "second");
            clear_current();
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn different_regions_do_not_conflict() {
        let data = [0u8; 8];
        let ((), report) = with_schedule(11, || {
            set_current(0, 0);
            log_write(&data[..], "r0.w");
            set_current(1, 1);
            log_write(&data[..], "r1.w");
            clear_current();
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn nested_schedules_restore_outer_state() {
        let data = [0u8; 8];
        let ((), outer) = with_schedule(1, || {
            set_current(0, 0);
            log_write(&data[..], "outer");
            let ((), inner) = with_schedule(2, || {
                set_current(0, 1);
                log_write(&data[..], "inner");
                clear_current();
            });
            assert_eq!(inner.accesses, 1);
            assert!(inner.is_clean());
            // The outer task is restored after the inner scope.
            assert_eq!(current_task_index(), Some(0));
            log_write(&data[..], "outer.after");
        });
        // Both outer accesses are same-task: clean.
        assert!(outer.is_clean(), "{outer}");
        assert_eq!(outer.accesses, 2);
    }
}
