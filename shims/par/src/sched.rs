//! Deterministic scheduler mode, the shadow event log, and race-report
//! types.
//!
//! Inside [`with_schedule`], every parallel-for source materializes its
//! items and executes them on the calling thread in a seeded
//! permutation (the "schedule"), while each logical task is tagged with
//! its *original* index so that `enumerate` and the access log stay
//! index-accurate regardless of execution order. The replay records a
//! full synchronization event stream — fork/begin/end/join region
//! edges, combine edges from reduction terminals, release/acquire
//! publication declared via [`log_release`] / [`log_acquire`], and the
//! byte ranges kernels declare with [`log_write`] / [`log_read`]. After
//! the closure returns, the stream is checked by the happens-before
//! detector ([`crate::hb`]) and the result comes back as a
//! [`RaceReport`] whose races carry clock evidence.
//!
//! The permutation of a parallel region depends only on `(seed, len)`.
//! This is deliberate: the two sides of a `zip` then permute
//! identically, so zipped pairs stay aligned under any schedule.
//!
//! Scheduled mode assumes reductions are commutative (every reduction
//! in this workspace is a sum/max/min or a tuple thereof). Outside
//! `with_schedule` the log functions return immediately after one
//! thread-local check and parallel work runs on the real pool.

use std::cell::{Cell, RefCell};

use crate::hb;

/// Sentinel task id for accesses made outside any parallel region.
pub const SERIAL_TASK: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Current {
    region: u32,
    task: u32,
}

thread_local! {
    /// Active schedule seed; `None` means pass-through mode.
    static MODE: Cell<Option<u64>> = const { Cell::new(None) };
    /// Monotonic id of the next materialized parallel region.
    static REGION: Cell<u32> = const { Cell::new(0) };
    /// The logical task currently executing, if any.
    static CURRENT: Cell<Option<Current>> = const { Cell::new(None) };
    /// Shadow event log, drained by [`with_schedule`].
    static LOG: RefCell<Vec<hb::Event>> = const { RefCell::new(Vec::new()) };
    /// Forked-but-not-yet-joined regions with the context each was
    /// forked from, innermost last.
    static OPEN: RefCell<Vec<(u32, Option<Current>)>> = const { RefCell::new(Vec::new()) };
}

/// One logged access: a byte range touched by a logical task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Parallel region (one per materialized source) the access ran in.
    pub region: u32,
    /// Original (pre-permutation) index of the logical task, or
    /// `u32::MAX` for serial code between regions.
    pub task: u32,
    /// True for writes, false for reads.
    pub write: bool,
    /// Start address of the range.
    pub base: usize,
    /// Length of the range in bytes.
    pub len: usize,
    /// Call-site label, e.g. `"preprocess.he_out"`.
    pub label: &'static str,
}

impl Access {
    /// One past the last byte of the range.
    pub(crate) fn end(&self) -> usize {
        self.base.saturating_add(self.len)
    }

    /// Whether the two byte ranges intersect.
    pub(crate) fn overlaps(&self, other: &Access) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Clock evidence for one side of a race: where the access sits on its
/// context's scalar clock and how that context relates to its region's
/// fork/join points (see `crate::hb` for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockInfo {
    /// Region of the access's context (`u32::MAX` = serial mainline).
    pub region: u32,
    /// Task id of the context (`u32::MAX` = serial mainline).
    pub task: u32,
    /// The access's epoch on its context's clock.
    pub epoch: u32,
    /// The region's fork point on the parent clock (0 for serial).
    pub fork: u32,
    /// The region's join point on the parent clock, if the task's
    /// effects actually reach it (`None`: the task never synchronizes
    /// with the continuation — missing join or dropped combine).
    pub join: Option<u32>,
}

impl std::fmt::Display for ClockInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.region == u32::MAX {
            return write!(f, "serial@{}", self.epoch);
        }
        write!(
            f,
            "r{}t{}@{} fork@{}",
            self.region, self.task, self.epoch, self.fork
        )?;
        match self.join {
            Some(j) => write!(f, " join@{j}"),
            None => write!(f, " unjoined"),
        }
    }
}

/// Two unordered accesses touched overlapping bytes and at least one of
/// them wrote: a data race under any real parallel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Region of the earlier access (`u32::MAX` = serial mainline).
    pub region: u32,
    /// Label of the earlier access (in replay order).
    pub label_a: &'static str,
    /// Task id of the earlier access.
    pub task_a: u32,
    /// Label of the later conflicting access.
    pub label_b: &'static str,
    /// Task id of the later conflicting access.
    pub task_b: u32,
    /// True when both sides wrote (write-write); false for read-write.
    pub write_write: bool,
    /// Number of overlapping bytes.
    pub overlap_len: usize,
    /// Clock evidence for the earlier access.
    pub clock_a: ClockInfo,
    /// Clock evidence for the later access.
    pub clock_b: ClockInfo,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.write_write {
            "write-write"
        } else {
            "read-write"
        };
        write!(
            f,
            "{kind} race: {} (task {}) overlaps {} (task {}) by {} byte(s); clocks {} vs {}",
            self.label_a,
            self.task_a,
            self.label_b,
            self.task_b,
            self.overlap_len,
            self.clock_a,
            self.clock_b
        )
    }
}

/// Maximum races a [`RaceReport`] materializes; further ones are counted.
pub const MAX_RACES_RECORDED: usize = 100;

/// Outcome of one scheduled run: detected races plus coverage counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// Detected races (at most [`MAX_RACES_RECORDED`]).
    pub races: Vec<Race>,
    /// Total races found, including ones beyond the recording cap.
    pub total_races: usize,
    /// Parallel regions materialized during the run.
    pub regions: u32,
    /// Accesses logged during the run.
    pub accesses: usize,
}

impl RaceReport {
    /// True when no conflicting access pair was found.
    pub fn is_clean(&self) -> bool {
        self.total_races == 0
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "ok: no races ({} region(s), {} access(es) checked)",
                self.regions, self.accesses
            );
        }
        writeln!(f, "{} race(s):", self.total_races)?;
        for r in &self.races {
            writeln!(f, "  {r}")?;
        }
        if self.total_races > self.races.len() {
            writeln!(f, "  ... and {} more", self.total_races - self.races.len())?;
        }
        Ok(())
    }
}

/// Restores the previous scheduler state on drop (panic-safe).
struct ModeGuard {
    prev_mode: Option<u64>,
    prev_region: u32,
    prev_current: Option<Current>,
    prev_open: Vec<(u32, Option<Current>)>,
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        MODE.with(|m| m.set(self.prev_mode));
        REGION.with(|r| r.set(self.prev_region));
        CURRENT.with(|c| c.set(self.prev_current));
        OPEN.with(|o| *o.borrow_mut() = std::mem::take(&mut self.prev_open));
    }
}

/// Runs `f` with the deterministic scheduler active, then replays the
/// recorded event stream through the happens-before detector. Nested
/// calls are allowed; the inner call sees only its own events and
/// restores the outer schedule on exit.
pub fn with_schedule<R>(seed: u64, f: impl FnOnce() -> R) -> (R, RaceReport) {
    let guard = ModeGuard {
        prev_mode: MODE.with(Cell::get),
        prev_region: REGION.with(Cell::get),
        prev_current: CURRENT.with(Cell::get),
        prev_open: OPEN.with(|o| std::mem::take(&mut *o.borrow_mut())),
    };
    let log_mark = LOG.with(|l| l.borrow().len());
    MODE.with(|m| m.set(Some(seed)));
    REGION.with(|r| r.set(0));
    CURRENT.with(|c| c.set(None));
    let result = f();
    let regions = REGION.with(Cell::get);
    let events: Vec<hb::Event> = LOG.with(|l| l.borrow_mut().split_off(log_mark));
    drop(guard);
    let mut report = hb::detect(&events);
    report.regions = regions;
    (result, report)
}

/// True while a [`with_schedule`] scope is active on this thread.
pub fn is_scheduled() -> bool {
    MODE.with(Cell::get).is_some()
}

pub(crate) fn active_seed() -> Option<u64> {
    MODE.with(Cell::get)
}

/// Stamp of the context active at this point of the replay.
fn current_ids() -> (u32, u32) {
    match CURRENT.with(Cell::get) {
        Some(c) => (c.region, c.task),
        None => (u32::MAX, SERIAL_TASK),
    }
}

/// Restores `saved` as the current context, but only if its region is
/// still open — a context saved before a region that has since joined
/// (e.g. the right side of a `zip`) must not come back to life.
fn restore_current(saved: Option<Current>) {
    let valid = saved.is_none_or(|c| OPEN.with(|o| o.borrow().iter().any(|(r, _)| *r == c.region)));
    CURRENT.with(|cell| cell.set(if valid { saved } else { None }));
}

/// Forks a new parallel region of `tasks` logical tasks from the
/// current context, recording the fork edge. Only called under an
/// active schedule.
pub(crate) fn fork_region(tasks: u32) -> u32 {
    let id = REGION.with(|r| {
        let id = r.get();
        r.set(id.wrapping_add(1));
        id
    });
    LOG.with(|l| l.borrow_mut().push(hb::Event::Fork { region: id, tasks }));
    OPEN.with(|o| o.borrow_mut().push((id, CURRENT.with(Cell::get))));
    id
}

/// Enters logical task `task` of `region`.
pub(crate) fn begin_task(region: u32, task: u32) {
    LOG.with(|l| l.borrow_mut().push(hb::Event::Begin { region, task }));
    CURRENT.with(|c| c.set(Some(Current { region, task })));
}

/// Leaves logical task `task` of `region`, restoring the context the
/// region was forked from.
pub(crate) fn end_task(region: u32, task: u32) {
    LOG.with(|l| l.borrow_mut().push(hb::Event::End { region, task }));
    let saved = OPEN.with(|o| {
        o.borrow()
            .iter()
            .rev()
            .find(|(r, _)| *r == region)
            .map(|(_, s)| *s)
    });
    restore_current(saved.flatten());
}

/// Records that the current task's value was folded into its region's
/// reduction (the combine edge reduction terminals emit per task).
pub(crate) fn combine_current() {
    if let Some(c) = CURRENT.with(Cell::get) {
        LOG.with(|l| {
            l.borrow_mut().push(hb::Event::Combine {
                region: c.region,
                task: c.task,
            });
        });
    }
}

/// Joins `region` back into the context it was forked from.
pub(crate) fn join_region(region: u32) {
    LOG.with(|l| l.borrow_mut().push(hb::Event::Join { region }));
    let saved = OPEN.with(|o| {
        let mut open = o.borrow_mut();
        open.iter()
            .rposition(|(r, _)| *r == region)
            .map(|i| open.remove(i).1)
    });
    restore_current(saved.flatten());
}

/// Original index of the logical task currently executing under an
/// active schedule, if any.
#[cfg(test)]
pub(crate) fn current_task_index() -> Option<usize> {
    if !is_scheduled() {
        return None;
    }
    CURRENT.with(Cell::get).map(|c| c.task as usize)
}

fn log_access(write: bool, base: usize, len: usize, label: &'static str) {
    if !is_scheduled() || len == 0 {
        return;
    }
    let (region, task) = current_ids();
    LOG.with(|l| {
        l.borrow_mut().push(hb::Event::Access(Access {
            region,
            task,
            write,
            base,
            len,
            label,
        }));
    });
}

/// Declares that the current logical task writes `slice` (no-op outside
/// [`with_schedule`]). Call this for every shared range a task writes
/// without synchronization; atomics are synchronized and must not be
/// logged as plain accesses — declare their ordering with
/// [`log_release`] / [`log_acquire`] instead.
#[inline]
pub fn log_write<T>(slice: &[T], label: &'static str) {
    log_access(
        true,
        slice.as_ptr() as usize,
        std::mem::size_of_val(slice),
        label,
    );
}

/// Declares that the current logical task reads `slice` (no-op outside
/// [`with_schedule`]).
#[inline]
pub fn log_read<T>(slice: &[T], label: &'static str) {
    log_access(
        false,
        slice.as_ptr() as usize,
        std::mem::size_of_val(slice),
        label,
    );
}

/// Declares that the current context performs a Release store on
/// `atomic` (no-op outside [`with_schedule`]). A later [`log_acquire`]
/// on the same atomic orders this context's prior accesses before the
/// acquirer's subsequent ones — the publication edge the detector
/// credits. Do not call this for `Ordering::Relaxed` stores: Relaxed
/// publishes nothing, and claiming the edge would mask a real race.
#[inline]
pub fn log_release<T>(atomic: &T) {
    if !is_scheduled() {
        return;
    }
    let (region, task) = current_ids();
    let addr = std::ptr::from_ref(atomic) as usize;
    LOG.with(|l| {
        l.borrow_mut()
            .push(hb::Event::Release { region, task, addr });
    });
}

/// Declares that the current context performs an Acquire load on
/// `atomic` that observed the released value (no-op outside
/// [`with_schedule`]). See [`log_release`].
#[inline]
pub fn log_acquire<T>(atomic: &T) {
    if !is_scheduled() {
        return;
    }
    let (region, task) = current_ids();
    let addr = std::ptr::from_ref(atomic) as usize;
    LOG.with(|l| {
        l.borrow_mut()
            .push(hb::Event::Acquire { region, task, addr });
    });
}

/// SplitMix64 step (same generator the fault-injection planner uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded Fisher–Yates permutation of `0..len`. Depends only on
/// `(seed, len)` so equal-length sources (the two sides of a `zip`)
/// permute identically.
pub(crate) fn permutation(seed: u64, len: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..len as u32).collect();
    let mut state = seed ^ (len as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    for i in (1..len).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic_and_bijective() {
        let p1 = permutation(7, 100);
        let p2 = permutation(7, 100);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(p1, sorted, "seeded permutation should shuffle");
        assert_ne!(permutation(8, 100), p1, "different seeds differ");
    }

    #[test]
    fn no_mode_means_no_logging() {
        let data = [1u32, 2, 3];
        log_write(&data, "test.unscheduled");
        let ((), report) = with_schedule(1, || {});
        assert_eq!(report.accesses, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn disjoint_writes_are_clean() {
        let data = [0u8; 64];
        let ((), report) = with_schedule(3, || {
            let r = fork_region(2);
            begin_task(r, 0);
            log_write(&data[0..32], "a");
            end_task(r, 0);
            begin_task(r, 1);
            log_write(&data[32..64], "b");
            end_task(r, 1);
            join_region(r);
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.accesses, 2);
    }

    #[test]
    fn overlapping_writes_race_with_clock_evidence() {
        let data = [0u8; 64];
        let ((), report) = with_schedule(3, || {
            let r = fork_region(2);
            begin_task(r, 0);
            log_write(&data[0..40], "a");
            end_task(r, 0);
            begin_task(r, 1);
            log_write(&data[32..64], "b");
            end_task(r, 1);
            join_region(r);
        });
        assert_eq!(report.total_races, 1, "{report}");
        let race = &report.races[0];
        assert!(race.write_write);
        assert_eq!(race.overlap_len, 8);
        assert_eq!((race.task_a, race.task_b), (0, 1));
        // Sibling tasks: same fork point, both joined, still racing.
        assert_eq!(race.clock_a.fork, race.clock_b.fork);
        assert!(race.clock_a.join.is_some());
    }

    #[test]
    fn read_write_overlap_races_but_read_read_does_not() {
        let data = [0u8; 16];
        let ((), report) = with_schedule(5, || {
            let r = fork_region(3);
            begin_task(r, 0);
            log_read(&data[..], "r0");
            end_task(r, 0);
            begin_task(r, 1);
            log_read(&data[..], "r1");
            end_task(r, 1);
            begin_task(r, 2);
            log_write(&data[4..8], "w");
            end_task(r, 2);
            join_region(r);
        });
        // The write conflicts with both reads; the reads do not conflict.
        assert_eq!(report.total_races, 2, "{report}");
        assert!(report.races.iter().all(|r| !r.write_write));
    }

    #[test]
    fn same_task_overlap_is_not_a_race() {
        let data = [0u8; 8];
        let ((), report) = with_schedule(9, || {
            let r = fork_region(5);
            begin_task(r, 4);
            log_write(&data[..], "first");
            log_write(&data[..], "second");
            end_task(r, 4);
            join_region(r);
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn joined_regions_do_not_conflict() {
        // Sequential regions reusing one buffer: the join edge of the
        // first orders it before the fork of the second.
        let data = [0u8; 8];
        let ((), report) = with_schedule(11, || {
            let r0 = fork_region(1);
            begin_task(r0, 0);
            log_write(&data[..], "r0.w");
            end_task(r0, 0);
            join_region(r0);
            let r1 = fork_region(1);
            begin_task(r1, 0);
            log_write(&data[..], "r1.w");
            end_task(r1, 0);
            join_region(r1);
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unjoined_region_races_with_later_region() {
        // Without the first region's join edge, nothing orders its
        // write before the second region's — the missing-join bug class.
        let data = [0u8; 8];
        let ((), report) = with_schedule(11, || {
            let r0 = fork_region(1);
            begin_task(r0, 0);
            log_write(&data[..], "r0.w");
            end_task(r0, 0);
            // join_region(r0) deliberately missing.
            let r1 = fork_region(1);
            begin_task(r1, 0);
            log_write(&data[..], "r1.w");
            end_task(r1, 0);
            join_region(r1);
        });
        assert_eq!(report.total_races, 1, "{report}");
        assert!(report.races[0].clock_a.join.is_none());
    }

    #[test]
    fn logged_publication_orders_unjoined_handoff() {
        // A release/acquire pair is the only edge ordering the write
        // before the read (the region never joins) — the detector must
        // credit it.
        let flag = std::sync::atomic::AtomicBool::new(false);
        let data = [0u8; 8];
        let ((), report) = with_schedule(3, || {
            let r = fork_region(1);
            begin_task(r, 0);
            log_write(&data[..], "producer");
            log_release(&flag);
            end_task(r, 0);
            log_acquire(&flag);
            log_read(&data[..], "consumer");
        });
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn nested_schedules_restore_outer_state() {
        let data = [0u8; 8];
        let ((), outer) = with_schedule(1, || {
            let r = fork_region(1);
            begin_task(r, 0);
            log_write(&data[..], "outer");
            let ((), inner) = with_schedule(2, || {
                let r2 = fork_region(1);
                begin_task(r2, 0);
                log_write(&data[..], "inner");
                end_task(r2, 0);
                join_region(r2);
            });
            assert_eq!(inner.accesses, 1);
            assert!(inner.is_clean());
            // The outer task is restored after the inner scope.
            assert_eq!(current_task_index(), Some(0));
            log_write(&data[..], "outer.after");
            end_task(r, 0);
            join_region(r);
        });
        // Both outer accesses are same-task: clean.
        assert!(outer.is_clean(), "{outer}");
        assert_eq!(outer.accesses, 2);
    }
}
