//! Self-contained stand-in for the subset of the `rand` API this
//! workspace uses, so the workspace builds in offline environments.
//!
//! The root manifest renames this package to the `rand` dependency key,
//! so `use rand::rngs::SmallRng` / `use rand::{Rng, SeedableRng}` resolve
//! here unchanged. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same construction the real `SmallRng` uses on 64-bit
//! targets — giving deterministic, statistically solid streams for the
//! graph generators and sampling estimators.

/// Core random-word source (the subset of `rand_core::RngCore` we need).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed (the subset of
/// `rand::SeedableRng` we need).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as `rand` does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`] (the subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (supports `gen::<f64>()` and the
    /// integer types via [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a half-open integer range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable from raw random words (the subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Half-open ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value's type.
    type Output;

    /// Draws a uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit multiply
/// (Lemire's multiply-shift; bias is < 2⁻⁶⁴ per draw).
#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Named generators (the subset of `rand::rngs`).
pub mod rngs {
    pub use crate::SmallRng;
}

/// A small, fast, deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion: never yields the all-zero state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(5usize..8);
            assert!((5..8).contains(&v));
        }
        let v = rng.gen_range(0u64..1);
        assert_eq!(v, 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
