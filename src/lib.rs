//! Umbrella crate for the LOTUS triangle-counting reproduction.
//!
//! Re-exports the workspace crates under stable module names so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use lotus::prelude::*;
//!
//! let graph = lotus::gen::rmat::Rmat::new(10, 8).generate(42);
//! let result = LotusCounter::new(LotusConfig::auto(&graph)).count(&graph);
//! let baseline = lotus::algos::forward::forward_count(&graph);
//! assert_eq!(result.total(), baseline);
//! ```

pub use lotus_algos as algos;
pub use lotus_analysis as analysis;
pub use lotus_core as core;
pub use lotus_gen as gen;
pub use lotus_graph as graph;
pub use lotus_perfsim as perfsim;

/// Most-used items in one import.
pub mod prelude {
    pub use lotus_algos::forward::forward_count;
    pub use lotus_core::config::{HubCount, LotusConfig};
    pub use lotus_core::count::LotusCounter;
    pub use lotus_core::LotusGraph;
    pub use lotus_graph::{GraphBuilder, UndirectedCsr};
}
