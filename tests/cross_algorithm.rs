//! Cross-crate correctness: every triangle-counting implementation in the
//! workspace must agree on every graph family.

use lotus::algos::bbtc::bbtc_count;
use lotus::algos::brute_force_count;
use lotus::algos::edge_iterator::edge_iterator_count;
use lotus::algos::edge_iterator_hashed::edge_iterator_hashed_count;
use lotus::algos::forward::forward_count;
use lotus::algos::forward_hashed::forward_hashed_count;
use lotus::algos::gbbs::gbbs_count;
use lotus::algos::new_vertex_listing::new_vertex_listing_count;
use lotus::algos::node_iterator::node_iterator_count;
use lotus::algos::node_iterator_core::node_iterator_core_count;
use lotus::core::adaptive::{adaptive_count, AdaptiveConfig};
use lotus::core::config::HubCount;
use lotus::core::kclique::count_kcliques;
use lotus::core::recursive::RecursiveLotus;
use lotus::core::streaming::StreamingLotus;
use lotus::prelude::*;
use lotus_graph::UndirectedCsr as G;

/// Runs every implementation and asserts one agreed count.
fn assert_all_agree(graph: &G) -> u64 {
    let want = forward_count(graph);
    assert_eq!(node_iterator_count(graph), want, "node iterator");
    assert_eq!(node_iterator_core_count(graph), want, "node iterator core");
    assert_eq!(edge_iterator_count(graph), want, "edge iterator");
    assert_eq!(
        edge_iterator_hashed_count(graph),
        want,
        "edge iterator hashed"
    );
    assert_eq!(forward_hashed_count(graph), want, "forward hashed");
    assert_eq!(new_vertex_listing_count(graph), want, "new vertex listing");
    assert_eq!(gbbs_count(graph), want, "gbbs");
    assert_eq!(bbtc_count(graph), want, "bbtc");
    assert_eq!(count_kcliques(graph, 3), want, "3-cliques");
    // DOULION with p = 1 is exact.
    assert_eq!(
        lotus::algos::doulion::doulion_estimate(graph, 1.0, 9).rounded(),
        want,
        "doulion p=1"
    );

    for hubs in [0u32, 1, 7, 64, 1 << 16] {
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        assert_eq!(
            LotusCounter::new(cfg).count(graph).total(),
            want,
            "lotus with {hubs} hubs"
        );
    }

    let rec = RecursiveLotus::new(LotusConfig::default(), 3);
    assert_eq!(rec.count(graph).triangles, want, "recursive lotus");

    let adaptive = adaptive_count(graph, &LotusConfig::default(), &AdaptiveConfig::default());
    assert_eq!(adaptive.triangles, want, "adaptive");

    want
}

#[test]
fn rmat_social() {
    let g = lotus::gen::Rmat::new(10, 10).generate(1);
    let t = assert_all_agree(&g);
    assert!(t > 0);
}

#[test]
fn rmat_web() {
    let g = lotus::gen::Rmat::new(10, 12)
        .with_params(lotus::gen::RmatParams::WEB)
        .generate(2);
    assert_all_agree(&g);
}

#[test]
fn barabasi_albert() {
    let g = lotus::gen::BarabasiAlbert::new(3000, 5).generate(3);
    assert_all_agree(&g);
}

#[test]
fn erdos_renyi() {
    let g = lotus::gen::ErdosRenyi::new(2000, 20_000).generate(4);
    assert_all_agree(&g);
}

#[test]
fn watts_strogatz() {
    let g = lotus::gen::WattsStrogatz::new(2000, 8, 0.3).generate(5);
    let t = assert_all_agree(&g);
    assert!(t > 0, "ring lattices are triangle-rich");
}

#[test]
fn small_graphs_match_brute_force() {
    for seed in 0..5u64 {
        let g = lotus::gen::ErdosRenyi::new(150, 1200).generate(seed);
        let want = brute_force_count(&g);
        assert_eq!(forward_count(&g), want, "seed {seed}");
        assert_eq!(
            LotusCounter::new(LotusConfig::auto(&g)).count(&g).total(),
            want,
            "seed {seed}"
        );
    }
}

#[test]
fn streaming_agrees_with_batch() {
    let edges = lotus::gen::Rmat::new(10, 8).generate_edges(6);
    let g = G::from_canonical_edges(&edges);
    let want = forward_count(&g);
    let mut s = StreamingLotus::from_degree_estimate(edges.num_vertices());
    s.insert_batch(edges.pairs().iter().copied());
    assert_eq!(s.triangles(), want);
}

#[test]
fn dataset_suite_tiny_agrees() {
    for d in lotus::gen::Dataset::small_suite() {
        let d = d.at_scale(lotus::gen::DatasetScale::Tiny);
        let g = d.generate();
        let want = forward_count(&g);
        let got = LotusCounter::new(LotusConfig::auto(&g)).count(&g).total();
        assert_eq!(got, want, "dataset {}", d.name);
    }
}

#[test]
fn empty_and_degenerate_graphs() {
    let empty = lotus::graph::builder::graph_from_edges(std::iter::empty());
    assert_eq!(assert_all_agree(&empty), 0);

    let single_edge = lotus::graph::builder::graph_from_edges([(0, 1)]);
    assert_eq!(assert_all_agree(&single_edge), 0);

    let triangle = lotus::graph::builder::graph_from_edges([(0, 1), (1, 2), (0, 2)]);
    assert_eq!(assert_all_agree(&triangle), 1);
}
