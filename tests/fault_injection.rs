//! Fault-injection coverage: every registered fault point, when armed,
//! must surface as a clean typed error — never an unhandled panic and
//! never a silently wrong count.
//!
//! Requires `--features fault-injection`; the registry is process-global
//! so every test that arms faults serializes on [`TEST_LOCK`].
#![cfg(feature = "fault-injection")]

use std::sync::Mutex;

use lotus_algos::forward::{forward_count, forward_count_guarded};
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::{CountError, LotusCounter, Phase};
use lotus_graph::io::{read_binary, read_edge_list_text, write_binary};
use lotus_graph::{EdgeList, GraphError, UndirectedCsr};
use lotus_resilience::fault::{
    arm, arm_plan, hits, reset, seeded_plan, FaultKind, PlannedFault, POINTS,
};
use lotus_resilience::{isolate, RunGuard};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn test_graph() -> UndirectedCsr {
    lotus_gen::Rmat::new(9, 8).generate(5)
}

fn counter() -> LotusCounter {
    LotusCounter::new(LotusConfig::default().with_hub_count(HubCount::Fixed(64)))
}

fn sample_binary() -> Vec<u8> {
    let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2), (2, 3)]).canonicalized();
    let mut buf = Vec::new();
    write_binary(&el, &mut buf).expect("in-memory write");
    buf
}

/// Arms `point` and drives the operation that passes through it,
/// asserting the injected fault surfaces as the layer's typed error.
/// Panics on an unknown point so extending [`POINTS`] without a test
/// here fails loudly.
fn exercise(point: &'static str) {
    match point {
        "io.read_binary.header" | "io.read_binary.payload" => {
            let err = read_binary(&sample_binary()[..]).expect_err(point);
            assert!(matches!(err, GraphError::Io(_)), "{point}: {err:?}");
            assert!(err.to_string().contains(point), "{point}: {err}");
        }
        "io.read_text.line" => {
            let err = read_edge_list_text(&b"0 1\n1 2\n0 2\n"[..]).expect_err(point);
            assert!(matches!(err, GraphError::Io(_)), "{point}: {err:?}");
        }
        "core.preprocess.build" => {
            let err = counter()
                .count_guarded(&test_graph(), &RunGuard::unlimited())
                .expect_err(point);
            match err {
                CountError::PhasePanic { phase, message, .. } => {
                    assert_eq!(phase, Phase::Preprocess);
                    assert!(message.contains(point), "{message}");
                }
                other => panic!("{point}: expected PhasePanic, got {other:?}"),
            }
        }
        "core.phase.hhh_hhn" | "core.phase.hnn" | "core.phase.nnn" => {
            let want_phase = match point {
                "core.phase.hhh_hhn" => Phase::HhhHhn,
                "core.phase.hnn" => Phase::Hnn,
                _ => Phase::Nnn,
            };
            let err = counter()
                .count_guarded(&test_graph(), &RunGuard::unlimited())
                .expect_err(point);
            match err {
                CountError::PhasePanic { phase, message, .. } => {
                    assert_eq!(phase, want_phase, "{point}");
                    assert!(message.contains(point), "{message}");
                }
                other => panic!("{point}: expected PhasePanic, got {other:?}"),
            }
        }
        "algos.forward.count" => {
            let caught = isolate(|| forward_count_guarded(&test_graph(), &RunGuard::unlimited()))
                .expect_err(point);
            assert!(caught.message.contains(point), "{}", caught.message);
        }
        "serve.snapshot.write"
        | "serve.snapshot.fsync"
        | "serve.snapshot.rename"
        | "serve.journal.append" => {
            // Every durable-store fault must surface as a typed
            // StoreError naming the failed step — the daemon turns it
            // into a DurabilityFailed response, never a crash.
            let dir = std::env::temp_dir().join(format!(
                "lotus-fault-{}-{}",
                point.replace('.', "_"),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("tmp dir");
            let (store, _state) = lotus_serve::DurableStore::open(&dir).expect("open store");
            let err = store
                .record_register("g", "rmat:6:4:1", &lotus_gen::Rmat::new(6, 4).generate(1))
                .expect_err(point);
            assert!(
                matches!(err, lotus_serve::StoreError::Io { .. }),
                "{point}: {err:?}"
            );
            assert!(err.to_string().contains(point), "{point}: {err}");
            let _ = std::fs::remove_dir_all(&dir);
        }
        other => panic!("fault point '{other}' has no injection test"),
    }
}

#[test]
fn every_registered_point_yields_a_typed_error() {
    let _guard = locked();
    for &point in POINTS {
        reset();
        // fire() maps IoError to Err at fallible sites; fire_panic()
        // panics for any armed kind, so one kind covers both site forms.
        arm(point, FaultKind::IoError, 1);
        exercise(point);
    }
    reset();
}

#[test]
fn short_reads_and_panics_are_equally_clean() {
    let _guard = locked();
    for kind in [FaultKind::ShortRead, FaultKind::Panic] {
        reset();
        arm("io.read_binary.payload", kind, 1);
        let result = std::panic::catch_unwind(|| read_binary(&sample_binary()[..]));
        match kind {
            FaultKind::Panic => {
                // fire() panics for an armed Panic fault; the reader must
                // not be relied on to catch it, callers isolate().
                assert!(result.is_err() || result.unwrap().is_err());
            }
            _ => {
                let err = result.expect("no panic").expect_err("typed error");
                assert!(matches!(err, GraphError::Io(_)), "{err:?}");
            }
        }
    }
    reset();
}

#[test]
fn nth_hit_arming_fires_from_n_onward() {
    let _guard = locked();
    reset();
    let buf = sample_binary();
    // Hits at this point: one per payload edge per read (4 edges).
    arm("io.read_binary.payload", FaultKind::ShortRead, 3);
    let err = read_binary(&buf[..]).expect_err("third edge read fails");
    assert!(matches!(err, GraphError::Io(_)), "{err:?}");
    assert_eq!(hits("io.read_binary.payload"), 3);
    // Persistent: the next read fails at its first edge (hit 4 >= 3).
    assert!(read_binary(&buf[..]).is_err());
    reset();
}

#[test]
fn unarmed_runs_count_exactly() {
    let _guard = locked();
    reset();
    let g = test_graph();
    let want = forward_count(&g);
    let r = counter()
        .count_guarded(&g, &RunGuard::unlimited())
        .expect("no faults armed");
    assert_eq!(r.total(), want, "fault-injection build must stay exact");
    // The phase points were hit (probed) even though nothing was armed.
    assert!(hits("core.phase.hhh_hhn") > 0);
    assert!(hits("core.phase.hnn") > 0);
    assert!(hits("core.phase.nnn") > 0);
    reset();
}

#[test]
fn seeded_plans_inject_reproducibly_and_never_escape() {
    let _guard = locked();
    let buf = sample_binary();
    let g = test_graph();
    for seed in 0..8u64 {
        let plan: Vec<PlannedFault> = seeded_plan(seed, POINTS, 2);
        assert_eq!(plan, seeded_plan(seed, POINTS, 2), "seed {seed}");
        reset();
        arm_plan(&plan);
        // Whatever the plan injects, the pipeline must fail typed: the
        // I/O layer returns GraphError, the counting layer CountError,
        // and isolate() confines the panics.
        let outcome = isolate(|| match read_binary(&buf[..]) {
            Err(e) => Err(format!("load: {e}")),
            Ok(_) => match counter().count_guarded(&g, &RunGuard::unlimited()) {
                Err(e) => Err(format!("count: {e}")),
                Ok(r) => Ok(r.total()),
            },
        });
        match outcome {
            Ok(Err(typed)) => assert!(typed.contains("fault point"), "seed {seed}: {typed}"),
            Ok(Ok(_)) => panic!("seed {seed}: every point armed, yet the run succeeded"),
            Err(caught) => {
                // An injected panic at a fallible I/O site escapes to the
                // outer isolate — still confined, still attributed.
                assert!(
                    caught.message.contains("fault point"),
                    "seed {seed}: {}",
                    caught.message
                );
            }
        }
    }
    reset();
}
