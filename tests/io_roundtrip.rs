//! Persistence round-trips: graphs written to disk load back identical
//! and count identically.

use lotus::algos::forward::forward_count;
use lotus::graph::io;
use lotus::prelude::*;
use lotus_graph::UndirectedCsr;

#[test]
fn binary_roundtrip_preserves_counts() {
    let edges = lotus::gen::Rmat::new(10, 8).generate_edges(11);
    let g = UndirectedCsr::from_canonical_edges(&edges);
    let want = forward_count(&g);

    let dir = std::env::temp_dir().join("lotus_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.lotg");
    io::save_binary(&edges, &path).unwrap();

    let loaded = io::load_binary(&path).unwrap();
    assert_eq!(loaded, edges);
    let g2 = UndirectedCsr::from_canonical_edges(&loaded);
    assert_eq!(forward_count(&g2), want);
    assert_eq!(
        LotusCounter::new(LotusConfig::auto(&g2)).count(&g2).total(),
        want
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn text_roundtrip_preserves_counts() {
    let edges = lotus::gen::BarabasiAlbert::new(500, 4).generate_edges(7);
    let mut buf = Vec::new();
    io::write_edge_list_text(&edges, &mut buf).unwrap();
    let loaded = io::read_edge_list_text(&buf[..]).unwrap();
    let g1 = UndirectedCsr::from_canonical_edges(&edges);
    let g2 = UndirectedCsr::from_canonical_edges(&loaded.canonicalized());
    assert_eq!(forward_count(&g1), forward_count(&g2));
}
