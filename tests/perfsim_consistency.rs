//! The instrumented (simulated) kernels must count exactly like the
//! production kernels, and the simulated locality advantage of LOTUS must
//! reproduce the paper's qualitative claims on the dataset suite.

use lotus::algos::forward::forward_count;
use lotus::algos::preprocess::degree_order_and_orient;
use lotus::core::preprocess::build_lotus_graph;
use lotus::perfsim::instrumented::{run_forward, run_lotus};
use lotus::perfsim::MachineModel;
use lotus::prelude::*;

#[test]
fn instrumented_kernels_agree_on_suite() {
    for d in lotus::gen::Dataset::small_suite().into_iter().take(3) {
        let d = d.at_scale(lotus::gen::DatasetScale::Tiny);
        let g = d.generate();
        let want = forward_count(&g);

        let pre = degree_order_and_orient(&g);
        let mut mf = MachineModel::tiny();
        assert_eq!(
            run_forward(&pre.forward, &mut mf),
            want,
            "{} forward",
            d.name
        );

        let lg = build_lotus_graph(&g, &LotusConfig::auto(&g));
        let mut ml = MachineModel::tiny();
        assert_eq!(run_lotus(&lg, &mut ml).triangles, want, "{} lotus", d.name);
    }
}

#[test]
fn lotus_reduces_llc_and_dtlb_misses() {
    // Figure 4's qualitative claim on a skewed graph large enough to
    // stress the tiny model hierarchy.
    let g = lotus::gen::Rmat::new(12, 16).generate(3);
    let pre = degree_order_and_orient(&g);
    let mut mf = MachineModel::tiny();
    run_forward(&pre.forward, &mut mf);

    let lg = build_lotus_graph(&g, &LotusConfig::auto(&g));
    let mut ml = MachineModel::tiny();
    run_lotus(&lg, &mut ml);

    let f = mf.report();
    let l = ml.report();
    assert!(
        l.llc_misses < f.llc_misses,
        "LLC: lotus {} vs forward {}",
        l.llc_misses,
        f.llc_misses
    );
    assert!(
        l.dtlb_misses < f.dtlb_misses,
        "DTLB: lotus {} vs forward {}",
        l.dtlb_misses,
        f.dtlb_misses
    );
}

#[test]
fn lotus_reduces_memory_accesses_and_instructions() {
    // Figure 5's qualitative claim: fewer loads and fewer instructions.
    let g = lotus::gen::Rmat::new(12, 16).generate(5);
    let pre = degree_order_and_orient(&g);
    let mut mf = MachineModel::tiny();
    run_forward(&pre.forward, &mut mf);

    let lg = build_lotus_graph(&g, &LotusConfig::auto(&g));
    let mut ml = MachineModel::tiny();
    run_lotus(&lg, &mut ml);

    let f = mf.report();
    let l = ml.report();
    assert!(l.memory_accesses < f.memory_accesses);
    assert!(l.instructions < f.instructions);
}

#[test]
fn h2h_accesses_are_concentrated() {
    // Figure 9's claim: a small fraction of H2H cachelines serves the
    // bulk of accesses. Needs enough hubs that H2H spans many cachelines
    // (the paper's 64K hubs give 512K lines; 2048 hubs give 4K here).
    let g = lotus::gen::Rmat::new(12, 16).generate(7);
    let cfg = LotusConfig::default().with_hub_count(lotus::core::config::HubCount::Fixed(2048));
    let lg = build_lotus_graph(&g, &cfg);
    let mut m = MachineModel::tiny();
    let out = run_lotus(&lg, &mut m);
    let h = out.h2h_histogram;
    let lines_90 = h.lines_for_fraction(0.90);
    let share = lines_90 as f64 / h.lines().max(1) as f64;
    assert!(
        share < 0.25,
        "90% of accesses should hit a small minority of lines, got {share:.2}"
    );
}
