//! Property-based tests (proptest) over the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use lotus::algos::forward::forward_count;
use lotus::algos::intersect::IntersectKind;
use lotus::core::config::HubCount;
use lotus::core::preprocess::build_lotus_graph;
use lotus::core::tiling::SqrtFractions;
use lotus::prelude::*;
use lotus_graph::{EdgeList, Relabeling, UndirectedCsr};

/// Strategy: an arbitrary small multigraph as raw (u, v) pairs.
fn raw_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    vec((0..max_v, 0..max_v), 0..max_e)
}

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// LOTUS equals Forward on arbitrary graphs for arbitrary hub counts.
    #[test]
    fn lotus_equals_forward(pairs in raw_edges(60, 300), hubs in 0u32..70) {
        let g = graph_of(pairs, 60);
        let want = forward_count(&g);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        prop_assert_eq!(LotusCounter::new(cfg).count(&g).total(), want);
    }

    /// The triangle count is invariant under any vertex relabeling.
    #[test]
    fn count_invariant_under_relabeling(pairs in raw_edges(40, 150), seed in 0u64..1000) {
        let g = graph_of(pairs, 40);
        // Derive a permutation from the seed by sorting keyed hashes.
        let mut perm: Vec<u32> = (0..40).collect();
        perm.sort_by_key(|&v| (v as u64).wrapping_mul(seed.wrapping_add(7)).wrapping_mul(0x9E3779B97F4A7C15));
        let r = Relabeling::from_old_to_new(perm);
        let h = r.apply(&g);
        prop_assert_eq!(forward_count(&h), forward_count(&g));
    }

    /// Canonicalization is idempotent and produces a canonical list.
    #[test]
    fn canonicalize_idempotent(pairs in raw_edges(50, 200)) {
        let mut el = EdgeList::from_pairs_with_vertices(pairs, 50);
        el.canonicalize();
        prop_assert!(el.is_canonical());
        let again = el.canonicalized();
        prop_assert_eq!(again, el);
    }

    /// The LOTUS structure always validates, and HE/NHE partition the
    /// edge set exactly.
    #[test]
    fn lotus_structure_validates(pairs in raw_edges(50, 200), hubs in 0u32..60) {
        let g = graph_of(pairs, 50);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        prop_assert!(lg.validate().is_ok(), "{:?}", lg.validate());
        prop_assert_eq!(lg.he_edges() + lg.nhe_edges(), g.num_edges());
    }

    /// All intersection kernels agree with each other on sorted inputs.
    #[test]
    fn intersection_kernels_agree(
        mut a in vec(0u32..500, 0..80),
        mut b in vec(0u32..500, 0..80),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let want = IntersectKind::Merge.count(&a, &b);
        for k in IntersectKind::ALL {
            prop_assert_eq!(k.count(&a, &b), want, "kernel {:?}", k);
        }
        // Symmetry.
        prop_assert_eq!(IntersectKind::Merge.count(&b, &a), want);
    }

    /// Squared-edge-tiling boundaries always cover [0, d] monotonically,
    /// and the tile work sums to d(d-1)/2.
    #[test]
    fn tiling_covers_pair_space(d in 0u32..5000, p in 1usize..64) {
        let f = SqrtFractions::new(p);
        let bounds = f.boundaries(d);
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(*bounds.last().unwrap(), d);
        prop_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));

        let mut tiles = Vec::new();
        f.tiles_for(0, d, &mut tiles);
        let total: u64 = tiles.iter().map(|t| t.work()).sum();
        prop_assert_eq!(total, d as u64 * d.saturating_sub(1) as u64 / 2);
    }

    /// Streaming insertion matches batch counting on arbitrary streams,
    /// in arbitrary insertion order.
    #[test]
    fn streaming_matches_batch(pairs in raw_edges(40, 120), hubs in 0u32..40) {
        let g = graph_of(pairs.clone(), 40);
        let want = forward_count(&g);
        let mut s = lotus::core::streaming::StreamingLotus::new(40, hubs);
        s.insert_batch(pairs);
        prop_assert_eq!(s.triangles(), want);
    }

    /// Degree-descending relabeling is always a permutation and sorts
    /// degrees non-increasingly.
    #[test]
    fn degree_relabeling_is_sorted_permutation(pairs in raw_edges(50, 200)) {
        let g = graph_of(pairs, 50);
        let r = Relabeling::degree_descending(&g.degrees());
        prop_assert!(r.is_permutation());
        let h = r.apply(&g);
        let degs: Vec<u32> = (0..h.num_vertices()).map(|v| h.degree(v)).collect();
        prop_assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }
}
