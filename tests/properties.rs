//! Randomized property tests over the core invariants.
//!
//! Deterministic: every case derives from a fixed seed through the
//! workspace PRNG, so failures reproduce exactly. Each property runs over
//! a sweep of seeds standing in for proptest-style case generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lotus::algos::forward::forward_count;
use lotus::algos::intersect::IntersectKind;
use lotus::core::config::HubCount;
use lotus::core::preprocess::build_lotus_graph;
use lotus::core::tiling::SqrtFractions;
use lotus::prelude::*;
use lotus_check::Validator;
use lotus_gen::{ErdosRenyi, Rmat};
use lotus_graph::{EdgeList, Relabeling, UndirectedCsr};

const CASES: u64 = 64;

/// An arbitrary small multigraph as raw (u, v) pairs (duplicates and
/// self-loops included, as canonicalization must handle them).
fn raw_edges(rng: &mut SmallRng, max_v: u32, max_e: usize) -> Vec<(u32, u32)> {
    let count = rng.gen_range(0..max_e);
    (0..count)
        .map(|_| (rng.gen_range(0..max_v), rng.gen_range(0..max_v)))
        .collect()
}

fn graph_of(pairs: Vec<(u32, u32)>, n: u32) -> UndirectedCsr {
    let mut el = EdgeList::from_pairs_with_vertices(pairs, n);
    el.canonicalize();
    UndirectedCsr::from_canonical_edges(&el)
}

/// LOTUS equals Forward on arbitrary graphs for arbitrary hub counts.
#[test]
fn lotus_equals_forward() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 60, 300), 60);
        let hubs = rng.gen_range(0..70u32);
        let want = forward_count(&g);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        assert_eq!(
            LotusCounter::new(cfg).count(&g).total(),
            want,
            "seed {seed} hubs {hubs}"
        );
    }
}

/// The triangle count is invariant under any vertex relabeling.
#[test]
fn count_invariant_under_relabeling() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 40, 150), 40);
        // Derive a permutation from the seed by sorting keyed hashes.
        let mut perm: Vec<u32> = (0..40).collect();
        perm.sort_by_key(|&v| {
            (v as u64)
                .wrapping_mul(seed.wrapping_add(7))
                .wrapping_mul(0x9E3779B97F4A7C15)
        });
        let r = Relabeling::from_old_to_new(perm);
        let h = r.apply(&g);
        assert_eq!(forward_count(&h), forward_count(&g), "seed {seed}");
    }
}

/// Canonicalization is idempotent and produces a canonical list.
#[test]
fn canonicalize_idempotent() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut el = EdgeList::from_pairs_with_vertices(raw_edges(&mut rng, 50, 200), 50);
        el.canonicalize();
        assert!(el.is_canonical(), "seed {seed}");
        assert_eq!(el.canonicalized(), el, "seed {seed}");
    }
}

/// The LOTUS structure always validates, and HE/NHE partition the edge
/// set exactly.
#[test]
fn lotus_structure_validates() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 50, 200), 50);
        let hubs = rng.gen_range(0..60u32);
        let cfg = LotusConfig::default().with_hub_count(HubCount::Fixed(hubs));
        let lg = build_lotus_graph(&g, &cfg);
        assert!(lg.validate().is_ok(), "seed {seed}: {:?}", lg.validate());
        let report = lotus_check::lotus::check_lotus_graph(&lg);
        assert!(report.is_clean(), "seed {seed}: {report}");
        assert_eq!(lg.he_edges() + lg.nhe_edges(), g.num_edges(), "seed {seed}");
    }
}

/// Builder output from random edge lists always passes the structural
/// validator — including generator graphs (R-MAT, Erdős–Rényi).
#[test]
fn random_graphs_pass_validator() {
    let validator = Validator::new();
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 80, 400), 80);
        let report = validator.check_undirected(&g);
        assert!(report.is_clean(), "builder seed {seed}: {report}");
    }
    for seed in 0..8u64 {
        let rmat = Rmat::new(9, 8).generate(seed);
        let report = validator.check_undirected(&rmat);
        assert!(report.is_clean(), "rmat seed {seed}: {report}");

        let er = ErdosRenyi::new(512, 2048).generate(seed);
        let report = validator.check_undirected(&er);
        assert!(report.is_clean(), "er seed {seed}: {report}");
    }
}

/// All intersection kernels agree with each other on sorted inputs.
#[test]
fn intersection_kernels_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a: Vec<u32> = (0..rng.gen_range(0..80usize))
            .map(|_| rng.gen_range(0..500u32))
            .collect();
        let mut b: Vec<u32> = (0..rng.gen_range(0..80usize))
            .map(|_| rng.gen_range(0..500u32))
            .collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let want = IntersectKind::Merge.count(&a, &b);
        for k in IntersectKind::ALL {
            assert_eq!(k.count(&a, &b), want, "kernel {k:?} seed {seed}");
        }
        // Symmetry.
        assert_eq!(IntersectKind::Merge.count(&b, &a), want, "seed {seed}");
    }
}

/// Squared-edge-tiling boundaries always cover [0, d] monotonically, and
/// the tile work sums to d(d-1)/2.
#[test]
fn tiling_covers_pair_space() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = rng.gen_range(0..5000u32);
        let p = rng.gen_range(1..64usize);
        let f = SqrtFractions::new(p);
        let bounds = f.boundaries(d);
        assert_eq!(bounds[0], 0);
        assert_eq!(*bounds.last().unwrap(), d);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));

        let mut tiles = Vec::new();
        f.tiles_for(0, d, &mut tiles);
        let total: u64 = tiles.iter().map(lotus_core::tiling::Tile::work).sum();
        assert_eq!(
            total,
            d as u64 * d.saturating_sub(1) as u64 / 2,
            "d {d} p {p}"
        );
    }
}

/// Streaming insertion matches batch counting on arbitrary streams, in
/// arbitrary insertion order.
#[test]
fn streaming_matches_batch() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pairs = raw_edges(&mut rng, 40, 120);
        let hubs = rng.gen_range(0..40u32);
        let g = graph_of(pairs.clone(), 40);
        let want = forward_count(&g);
        let mut s = lotus::core::streaming::StreamingLotus::new(40, hubs);
        s.insert_batch(pairs);
        assert_eq!(s.triangles(), want, "seed {seed} hubs {hubs}");
    }
}

/// Degree-descending relabeling is always a permutation and sorts degrees
/// non-increasingly.
#[test]
fn degree_relabeling_is_sorted_permutation() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph_of(raw_edges(&mut rng, 50, 200), 50);
        let r = Relabeling::degree_descending(&g.degrees());
        assert!(r.is_permutation(), "seed {seed}");
        let h = r.apply(&g);
        let degs: Vec<u32> = (0..h.num_vertices()).map(|v| h.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "seed {seed}");
    }
}

/// The per-vertex triangle counts sum to exactly three times the total
/// (every triangle is incident to three vertices) on both skewed R-MAT
/// and uniform Erdős–Rényi graphs. `lotus query per-vertex` relies on
/// this identity being exact, not approximate.
#[test]
fn per_vertex_sum_is_three_times_total() {
    use lotus::core::per_vertex::count_per_vertex;

    for seed in 0..8u64 {
        let graphs = [
            ("rmat", Rmat::new(7, 8).generate(seed)),
            ("er", ErdosRenyi::new(128, 512).generate(seed)),
        ];
        for (kind, g) in graphs {
            let cfg = LotusConfig::auto(&g);
            let lg = build_lotus_graph(&g, &cfg);
            let total = LotusCounter::new(cfg).count_prepared(&lg).total();
            let per_vertex = count_per_vertex(&lg);
            assert_eq!(
                per_vertex.len(),
                g.num_vertices() as usize,
                "{kind} seed {seed}"
            );
            assert_eq!(
                per_vertex.iter().sum::<u64>(),
                3 * total,
                "{kind} seed {seed}"
            );
        }
    }
}
