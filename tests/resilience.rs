//! End-to-end resilience behaviour: cooperative cancellation, deadline
//! expiry, and memory-budget degradation across the workspace layers.

use std::time::Duration;

use lotus_algos::forward::{forward_count, forward_count_guarded};
use lotus_core::config::{HubCount, LotusConfig};
use lotus_core::count::{CountError, LotusCounter, Phase};
use lotus_core::resilient::{count_with_budget, estimate_footprint, DegradeReason};
use lotus_resilience::{CancelToken, Deadline, MemoryBudget, RunGuard, StopReason};

fn cfg(hubs: u32) -> LotusConfig {
    LotusConfig::default().with_hub_count(HubCount::Fixed(hubs))
}

fn test_graph() -> lotus_graph::UndirectedCsr {
    lotus_gen::Rmat::new(10, 10).generate(23)
}

#[test]
fn expired_deadline_returns_structured_interruption() {
    let g = test_graph();
    let guard = RunGuard::unlimited().with_deadline(Deadline::after(Duration::ZERO));
    let err = LotusCounter::new(cfg(64))
        .count_guarded(&g, &guard)
        .expect_err("a zero deadline must interrupt the run");
    match err {
        CountError::Interrupted { reason, phase, .. } => {
            assert_eq!(reason, StopReason::DeadlineExpired);
            // The earliest poll is in preprocessing.
            assert_eq!(phase, Phase::Preprocess);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn cancellation_wins_over_deadline_and_reports_partial() {
    let g = test_graph();
    let token = CancelToken::new();
    token.cancel();
    let guard = RunGuard::unlimited()
        .with_cancel(token)
        .with_deadline(Deadline::after(Duration::ZERO));
    let err = LotusCounter::new(cfg(64))
        .count_guarded(&g, &guard)
        .expect_err("cancelled run");
    match err {
        CountError::Interrupted {
            reason, partial, ..
        } => {
            assert_eq!(reason, StopReason::Cancelled);
            assert_eq!(partial.total(), 0, "nothing counted before preprocessing");
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn forward_driver_honours_the_guard() {
    let g = test_graph();
    let guard = RunGuard::unlimited().with_deadline(Deadline::after(Duration::ZERO));
    let (reason, partial) = forward_count_guarded(&g, &guard).expect_err("interrupted");
    assert_eq!(reason, StopReason::DeadlineExpired);
    assert_eq!(partial, 0);

    let full = forward_count_guarded(&g, &RunGuard::unlimited()).expect("unlimited");
    assert_eq!(full, forward_count(&g));
}

#[test]
fn insufficient_budget_shrinks_hubs_without_changing_the_count() {
    let g = test_graph();
    let want = forward_count(&g);
    let configured = 512u32;
    let full = estimate_footprint(g.num_vertices(), g.num_edges(), configured);
    let hubless = estimate_footprint(g.num_vertices(), g.num_edges(), 0);
    assert!(full > hubless, "H2H must contribute to the estimate");

    let budget = MemoryBudget::from_bytes((full + hubless) / 2);
    let r = count_with_budget(&cfg(configured), &g, &budget, &RunGuard::unlimited())
        .expect("shrunk run completes");
    match r.degraded {
        Some(DegradeReason::ShrunkHubs {
            from,
            to,
            estimated,
            budget: b,
        }) => {
            assert_eq!(from, configured);
            assert!(to < from);
            assert!(estimated <= b, "the chosen configuration fits");
        }
        other => panic!("expected ShrunkHubs, got {other:?}"),
    }
    assert_eq!(r.total(), want, "degraded runs must stay exact");
}

#[test]
fn hopeless_budget_falls_back_to_forward_hashed() {
    let g = test_graph();
    let want = forward_count(&g);
    let budget = MemoryBudget::from_bytes(1);
    let r = count_with_budget(&cfg(512), &g, &budget, &RunGuard::unlimited())
        .expect("fallback completes");
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::ForwardFallback { .. })
    ));
    assert_eq!(r.total(), want);
}

#[test]
fn budget_fallback_still_honours_the_deadline() {
    let g = test_graph();
    let budget = MemoryBudget::from_bytes(1);
    let guard = RunGuard::unlimited().with_deadline(Deadline::after(Duration::ZERO));
    let err = count_with_budget(&cfg(64), &g, &budget, &guard)
        .expect_err("zero deadline interrupts the fallback too");
    match err {
        CountError::Interrupted { phase, reason, .. } => {
            assert_eq!(phase, Phase::Fallback);
            assert_eq!(reason, StopReason::DeadlineExpired);
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

#[test]
fn generous_budget_and_deadline_match_the_plain_path() {
    let g = test_graph();
    let counter = LotusCounter::new(cfg(64));
    let plain = counter.count(&g);
    let guard = RunGuard::unlimited().with_deadline(Deadline::after(Duration::from_secs(3600)));
    let budget = MemoryBudget::from_bytes(u64::MAX);
    let r = count_with_budget(counter.config(), &g, &budget, &guard).expect("completes");
    assert!(r.degraded.is_none());
    assert_eq!(r.result.stats, plain.stats);
}
